"""Fault-tolerant process-pool execution backend for the experiment sweeps.

The packet-success-rate figures evaluate many independent (MCS, SIR) points;
each point derives every random draw from its own explicit seed (see
:mod:`repro.utils.rng`), so points can execute in any order on any worker —
and can be *re-executed* after a crash — without changing a single sample.
This module exploits that purity to make sweep execution supervised instead
of fire-and-forget:

* :func:`resolve_workers` reads the worker count (argument, then the
  ``REPRO_WORKERS`` environment variable, then 1);
* :class:`FailurePolicy` bundles the recovery knobs — bounded retry with
  exponential backoff, an optional per-task timeout, a pool-respawn budget
  and whether to degrade to serial in-process execution when the pool keeps
  dying — resolved from ``REPRO_MAX_RETRIES`` / ``REPRO_TASK_TIMEOUT`` /
  ``REPRO_BACKOFF`` / ``REPRO_DEGRADE`` (or the ``--max-retries`` /
  ``--task-timeout`` CLI flags);
* :func:`parallel_map` / :func:`parallel_map_chunked` fan a function over a
  list of picklable tasks through a supervised
  :class:`concurrent.futures.ProcessPoolExecutor`, preserving input order.

Supervision semantics (all recovery events are counted in
:func:`supervisor_stats` and logged as one ``[supervise]`` stderr line each):

* a task that raises is retried up to ``max_retries`` times with exponential
  backoff; exhaustion raises :class:`SweepTaskError` naming the task;
* a task that exceeds ``task_timeout`` (pool mode only — serial execution
  cannot be preempted) is abandoned and re-dispatched like a failure;
* a dead worker (``BrokenProcessPool``) triggers one pool respawn (budget:
  ``max_pool_respawns``) re-dispatching only the incomplete tasks of the
  current chunk; when the pool keeps dying the supervisor degrades to serial
  in-process execution instead of giving up (unless ``REPRO_DEGRADE=0``);
* a task that cannot be pickled for dispatch (the pool probe only sees the
  first task) is executed serially in the parent with a warning naming the
  point's stable content key, instead of crashing the sweep with an opaque
  ``PicklingError``.

Serial execution (``n_workers=1``, the default) bypasses the pool entirely
but keeps retry supervision, and unpicklable task *functions* fall back to
the serial path with a warning, so figure modules can always call through
this layer.  Deterministic fault injection for testing every one of these
paths lives in :mod:`repro.experiments.faults` (``REPRO_FAULTS``).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import sys
import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, TypeVar

from repro import obs
from repro.experiments.faults import FaultPlan
from repro.utils.sanitize import run_sanitized, task_digest

__all__ = [
    "FailurePolicy",
    "SupervisorStats",
    "SweepTaskError",
    "SweepExecutionError",
    "resolve_workers",
    "parallel_map",
    "parallel_map_chunked",
    "supervisor_stats",
    "reset_supervisor_stats",
    "RETRIES_ENV_VAR",
    "TIMEOUT_ENV_VAR",
    "BACKOFF_ENV_VAR",
    "DEGRADE_ENV_VAR",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variables feeding :meth:`FailurePolicy.from_env`.
RETRIES_ENV_VAR = "REPRO_MAX_RETRIES"
TIMEOUT_ENV_VAR = "REPRO_TASK_TIMEOUT"
BACKOFF_ENV_VAR = "REPRO_BACKOFF"
DEGRADE_ENV_VAR = "REPRO_DEGRADE"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve the worker count: explicit argument, ``REPRO_WORKERS``, else 1.

    Zero or negative counts are rejected with an error naming the source
    (the argument or the environment variable), so a typo fails fast instead
    of silently serialising or hanging a pool.
    """
    source = "worker count"
    if n_workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        source = "REPRO_WORKERS"
        try:
            n_workers = int(raw)
        except ValueError as error:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from error
    if n_workers < 1:
        raise ValueError(f"{source} must be at least 1, got {n_workers}")
    return n_workers


@dataclass(frozen=True)
class FailurePolicy:
    """How the supervised executor reacts to failing, hanging or dying work.

    ``max_retries`` bounds re-executions per task (on exception or timeout);
    ``task_timeout`` (seconds, pool mode) abandons a task that takes too
    long; retry ``n`` sleeps ``backoff_base * backoff_factor**n`` seconds
    first; ``max_pool_respawns`` bounds how often a broken process pool is
    rebuilt before ``degrade_serial`` decides between finishing the sweep
    serially in-process and raising :class:`SweepExecutionError`.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    max_pool_respawns: int = 1
    degrade_serial: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task timeout must be positive, got {self.task_timeout}")
        if self.backoff_base < 0 or self.backoff_factor <= 0:
            raise ValueError("backoff base must be >= 0 and the factor positive")
        if self.max_pool_respawns < 0:
            raise ValueError(f"max pool respawns must be >= 0, got {self.max_pool_respawns}")

    def backoff_delay(self, retry: int) -> float:
        """Seconds to sleep before retry number ``retry`` (0-based)."""
        return self.backoff_base * self.backoff_factor**retry

    @classmethod
    def from_env(
        cls,
        max_retries: int | None = None,
        task_timeout: float | None = None,
    ) -> "FailurePolicy":
        """Resolve the policy: explicit arguments, then ``REPRO_*``, else defaults.

        Malformed values fail fast with an error naming their source, like
        :func:`resolve_workers`.
        """
        if max_retries is None:
            raw = os.environ.get(RETRIES_ENV_VAR, "").strip()
            if raw:
                try:
                    max_retries = int(raw)
                except ValueError as error:
                    raise ValueError(
                        f"{RETRIES_ENV_VAR} must be an integer, got {raw!r}"
                    ) from error
                if max_retries < 0:
                    raise ValueError(f"{RETRIES_ENV_VAR} must be >= 0, got {max_retries}")
        elif max_retries < 0:
            raise ValueError(f"max retries must be >= 0, got {max_retries}")
        if task_timeout is None:
            raw = os.environ.get(TIMEOUT_ENV_VAR, "").strip()
            if raw:
                try:
                    task_timeout = float(raw)
                except ValueError as error:
                    raise ValueError(
                        f"{TIMEOUT_ENV_VAR} must be a number of seconds, got {raw!r}"
                    ) from error
                if task_timeout <= 0:
                    raise ValueError(f"{TIMEOUT_ENV_VAR} must be positive, got {task_timeout}")
        elif task_timeout <= 0:
            raise ValueError(f"task timeout must be positive, got {task_timeout}")
        backoff_base: float | None = None
        raw = os.environ.get(BACKOFF_ENV_VAR, "").strip()
        if raw:
            try:
                backoff_base = float(raw)
            except ValueError as error:
                raise ValueError(
                    f"{BACKOFF_ENV_VAR} must be a number of seconds, got {raw!r}"
                ) from error
            if backoff_base < 0:
                raise ValueError(f"{BACKOFF_ENV_VAR} must be >= 0, got {backoff_base}")
        raw = os.environ.get(DEGRADE_ENV_VAR, "").strip().lower()
        if raw and raw not in _TRUTHY + _FALSY:
            raise ValueError(f"{DEGRADE_ENV_VAR} must be a boolean flag, got {raw!r}")
        defaults = cls()
        return cls(
            max_retries=defaults.max_retries if max_retries is None else max_retries,
            task_timeout=task_timeout,
            backoff_base=defaults.backoff_base if backoff_base is None else backoff_base,
            degrade_serial=raw not in _FALSY if raw else defaults.degrade_serial,
        )


@dataclass
class SupervisorStats:
    """Counters of every recovery event the supervised executor performed."""

    retries: int = 0
    timeouts: int = 0
    pool_respawns: int = 0
    pickling_fallbacks: int = 0
    degraded: int = 0

    def snapshot(self) -> "SupervisorStats":
        """An independent copy (for before/after diffing)."""
        _warn_if_worker("snapshot")
        return dataclasses.replace(self)

    def diff(self, earlier: "SupervisorStats") -> "SupervisorStats":
        """Events recorded since ``earlier`` was snapshotted."""
        _warn_if_worker("diff")
        return SupervisorStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in dataclasses.fields(self)
            }
        )

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


def _warn_if_worker(operation: str) -> None:
    """Enforce the documented parent-only semantics of the counters.

    The supervisor only ever runs in the parent, so a snapshot/diff taken
    inside a pool worker reads an inert fork/spawn copy — always zeros,
    never updated.  That has been documented since the counters landed but
    silently returned misleading numbers; now it warns, naming the misuse.
    """
    if multiprocessing.parent_process() is not None:
        warnings.warn(
            f"SupervisorStats.{operation}() called in a worker process: the "
            "recovery counters are parent-only (workers hold an inert copy "
            "that is never updated); take snapshots/diffs in the parent",
            RuntimeWarning,
            stacklevel=3,
        )


#: Parent-process recovery counters (see :func:`supervisor_stats`).  Every
#: write happens in the supervisor, which only ever runs in the parent:
#: workers hold a fork/spawn copy that is never mutated and never read back.
# repro-lint: disable=RPR008 -- deliberately parent-only: all writes happen in
# the _Supervisor (parent process); worker copies are dead state by design and
# supervisor_stats() documents the parent-only semantics.
_STATS = SupervisorStats()


def supervisor_stats() -> SupervisorStats:
    """The recovery counters of the *parent* process, across all sweeps.

    Snapshot before a run and :meth:`~SupervisorStats.diff` after to obtain
    per-run numbers (the campaign scheduler records exactly that in its
    ``summary.json``).

    The counters are parent-only by design: the supervisor increments them
    while driving the pool, so retries, timeouts and respawns are all
    observed — and counted — in the parent.  Worker processes see an inert
    copy that is never merged back; calling this inside a pool worker
    always returns zeros.
    """
    return _STATS


def reset_supervisor_stats() -> None:
    """Zero the parent-process recovery counters (test isolation helper).

    Like :func:`supervisor_stats` this acts on the parent's counters only;
    it does not (and need not) reach into live pool workers.
    """
    global _STATS
    _STATS = SupervisorStats()


class SweepTaskError(RuntimeError):
    """One sweep task kept failing after every retry the policy allowed."""

    def __init__(
        self, ordinal: int, attempts: int, reason: str, task_key: str | None = None
    ) -> None:
        self.ordinal = ordinal
        self.attempts = attempts
        self.task_key = task_key
        suffix = f" [stable_key {task_key[:12]}…]" if task_key else ""
        super().__init__(
            f"sweep task {ordinal} failed after {attempts} attempt(s): {reason}{suffix}"
        )


class SweepExecutionError(RuntimeError):
    """The execution backend itself gave up (e.g. the pool kept dying)."""


def _log(message: str) -> None:
    print(f"[supervise] {message}", file=sys.stderr, flush=True)


def _task_key(task: Any) -> str | None:
    # Lazy import: parallel is lower in the layering than the store module.
    try:
        from repro.experiments.store import stable_key

        return stable_key(task)
    except Exception:
        return None


def _picklable(*objects: object) -> bool:
    """Probe whether the pool could serialise ``objects``.

    Called with the task function and ONE representative task, not the full
    task list — the pool pickles every task anyway when it dispatches, so
    probing them all would pay the serialisation cost twice on large sweeps.
    A later task that turns out unpicklable is caught at dispatch time and
    executed serially instead (see :class:`_Supervisor`).
    """
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _is_pickling_error(error: BaseException) -> bool:
    """Did dispatching (or returning) this task die in the pickle layer?"""
    if isinstance(error, pickle.PicklingError):
        return True
    return isinstance(error, (TypeError, AttributeError, NotImplementedError)) and (
        "pickle" in str(error).lower()
    )


def _run_task(
    fn: Callable[[Any], Any],
    task: Any,
    plan: FaultPlan | None,
    ordinal: int,
    in_pool: bool,
    trace: str | None = None,
) -> Any:
    """Execute one task (in a pool worker or the parent), injecting faults.

    Module-level so it pickles into workers; the fault plan travels with
    every dispatch, so injection state never depends on worker start-up
    environment.  Runs under the determinism sanitizer when
    ``REPRO_SANITIZE`` is set — both the pooled and the serial path route
    through here, so spools cover every worker count identically.

    ``trace`` (the parent's dispatch id, passed only when the parent is
    tracing) makes the execution a traced ``task`` section: in a pool
    worker that opens a per-task spool; in the parent it nests as a span of
    the sweep's record.  The dedup key ``<dispatch>/<ordinal>`` is shared
    by every re-execution of the same task (retries, timeout twins), so the
    merge keeps exactly one; the ``key`` attr is the engine-normalised task
    digest, aligning fast/reference traces task by task.
    """
    if trace is None:
        if plan is not None:
            plan.apply(ordinal, in_pool=in_pool)
        return run_sanitized(fn, task)
    with obs.tracing(
        "task",
        dedup=f"{trace}/{ordinal}",
        dispatch=trace,
        ordinal=ordinal,
        in_pool=in_pool,
        key=task_digest(task)[:16],
    ):
        if plan is not None:
            plan.apply(ordinal, in_pool=in_pool)
        return run_sanitized(fn, task)


_UNSET = object()


class _Supervisor:
    """Drives one ``parallel_map_chunked`` call with failure recovery.

    One instance (and its process pool) is reused across every chunk of the
    call, so checkpointing does not pay a worker-respawn (plus numpy
    re-import) per chunk.  ``pooled=False`` (serial mode) keeps the retry
    and fault-injection behaviour without any pool.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        n_workers: int,
        policy: FailurePolicy,
        plan: FaultPlan | None,
        total: int,
        pooled: bool,
    ) -> None:
        self.fn = fn
        self.policy = policy
        self.plan = plan
        self.pooled = pooled
        self.max_workers = max(1, min(n_workers, total))
        self.pool: ProcessPoolExecutor | None = None
        self.respawns = 0
        self.degraded = False
        self.hang_suspected = False
        # Dispatch id naming this call's submit/task events in the trace;
        # None (and therefore zero per-task work) when tracing is off.
        self.dispatch = obs.next_dispatch_id() if obs.enabled() else None

    # -- pool lifecycle ----------------------------------------------------- #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            self.pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self.pool

    def _discard_pool(self) -> None:
        """Tear the pool down hard (dead or hung workers included)."""
        if self.pool is None:
            return
        for process in list((getattr(self.pool, "_processes", None) or {}).values()):
            if process.is_alive():
                process.terminate()
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = None

    def close(self) -> None:
        if self.pool is None:
            return
        if self.hang_suspected:
            # A task timed out earlier: a worker may still be stuck on the
            # abandoned execution, and a graceful shutdown would join it.
            self._discard_pool()
        else:
            self.pool.shutdown(wait=True)
            self.pool = None

    def _recover_pool(self, n_incomplete: int) -> None:
        """Respawn after a pool death, or degrade/raise once out of budget."""
        self._discard_pool()
        if self.respawns < self.policy.max_pool_respawns:
            self.respawns += 1
            _STATS.pool_respawns += 1
            obs.event(
                "supervise.respawn",
                respawn=self.respawns,
                n_incomplete=n_incomplete,
            )
            _log(
                f"worker process died; respawning the pool "
                f"(respawn {self.respawns}/{self.policy.max_pool_respawns}) and "
                f"re-dispatching {n_incomplete} incomplete task(s)"
            )
            self._ensure_pool()
            return
        if not self.policy.degrade_serial:
            raise SweepExecutionError(
                f"process pool died {self.respawns + 1} time(s) and serial "
                f"degradation is disabled ({DEGRADE_ENV_VAR}=0)"
            )
        self.degraded = True
        _STATS.degraded += 1
        obs.event("supervise.degraded", n_incomplete=n_incomplete)
        _log(
            "process pool died again; degrading to serial in-process execution "
            "for the remaining tasks"
        )

    # -- execution ---------------------------------------------------------- #
    def run_chunk(self, chunk: Sequence[Any], base: int) -> list[Any]:
        """Execute one chunk, returning outcomes in task order."""
        if not chunk:
            return []
        if not self.pooled or self.degraded:
            return [self._call_serial(task, base + i) for i, task in enumerate(chunk)]
        results: list[Any] = [_UNSET] * len(chunk)
        attempts = [0] * len(chunk)
        futures: dict[int, Future[Any]] = {}
        while True:
            try:
                return self._drive(chunk, base, results, attempts, futures)
            except BrokenExecutor:
                # Keep what already finished; only the rest is re-dispatched.
                self._harvest(futures, results)
                futures.clear()
                incomplete = [i for i in range(len(chunk)) if results[i] is _UNSET]
                self._recover_pool(len(incomplete))
                if self.degraded:
                    for i in incomplete:
                        results[i] = self._call_serial(chunk[i], base + i, attempts[i])
                    return results

    def _submit(self, chunk: Sequence[Any], base: int, i: int) -> Future[Any]:
        if self.dispatch is not None:
            # Payload size is measured with an extra serialisation, paid
            # only while tracing (the pool pickles the dispatch itself).
            with obs.span("dispatch.serialize", dispatch=self.dispatch, ordinal=base + i):
                payload = len(pickle.dumps((self.fn, chunk[i])))
                obs.add(bytes=payload)
            future = self._ensure_pool().submit(
                _run_task, self.fn, chunk[i], self.plan, base + i, True, self.dispatch
            )
            obs.event(
                "dispatch.submit", dispatch=self.dispatch, ordinal=base + i, bytes=payload
            )
            return future
        return self._ensure_pool().submit(
            _run_task, self.fn, chunk[i], self.plan, base + i, True
        )

    @staticmethod
    def _harvest(futures: dict[int, Future[Any]], results: list[Any]) -> None:
        """Collect every future that completed cleanly before a pool death."""
        for i, future in futures.items():
            if results[i] is _UNSET and future.done() and not future.cancelled():
                if future.exception() is None:
                    results[i] = future.result()

    def _drive(
        self,
        chunk: Sequence[Any],
        base: int,
        results: list[Any],
        attempts: list[int],
        futures: dict[int, Future[Any]],
    ) -> list[Any]:
        for i in range(len(chunk)):
            if results[i] is _UNSET and i not in futures:
                futures[i] = self._submit(chunk, base, i)
        index = 0
        while index < len(chunk):
            if results[index] is not _UNSET:
                index += 1
                continue
            future = futures[index]
            try:
                results[index] = future.result(timeout=self.policy.task_timeout)
                if self.dispatch is not None:
                    obs.event("dispatch.result", dispatch=self.dispatch, ordinal=base + index)
                index += 1
            except TimeoutError:
                future.cancel()
                self.hang_suspected = True
                _STATS.timeouts += 1
                self._before_retry(
                    base + index,
                    attempts,
                    index,
                    f"timed out after {self.policy.task_timeout:g}s",
                    task=chunk[index],
                )
                futures[index] = self._submit(chunk, base, index)
            except BrokenExecutor:
                raise
            except Exception as error:  # noqa: BLE001 — task failures are data here
                if _is_pickling_error(error):
                    # Dispatch-time (or result-transport) pickling failure:
                    # the pool never ran this point.  Name it and run it
                    # serially instead of crashing the whole sweep.
                    _STATS.pickling_fallbacks += 1
                    key = _task_key(chunk[index])
                    warnings.warn(
                        f"sweep task {base + index} could not cross the process "
                        f"boundary ({type(error).__name__}: {error}); executing it "
                        "serially in the parent instead"
                        + (f" [stable_key {key[:12]}…]" if key else ""),
                        RuntimeWarning,
                        stacklevel=4,
                    )
                    results[index] = self._call_serial(chunk[index], base + index)
                    index += 1
                    continue
                self._before_retry(
                    base + index,
                    attempts,
                    index,
                    f"failed: {type(error).__name__}: {error}",
                    cause=error,
                    task=chunk[index],
                )
                futures[index] = self._submit(chunk, base, index)
        return results

    def _before_retry(
        self,
        ordinal: int,
        attempts: list[int],
        i: int,
        reason: str,
        cause: BaseException | None = None,
        task: Any = None,
    ) -> None:
        """Account one failure; sleep the backoff or raise when exhausted."""
        attempts[i] += 1
        if attempts[i] > self.policy.max_retries:
            raise SweepTaskError(ordinal, attempts[i], reason, _task_key(task)) from cause
        _STATS.retries += 1
        obs.event("supervise.retry", ordinal=ordinal, attempt=attempts[i], reason=reason)
        delay = self.policy.backoff_delay(attempts[i] - 1)
        _log(
            f"task {ordinal} {reason}; "
            f"retry {attempts[i]}/{self.policy.max_retries}"
            + (f" in {delay:g}s" if delay > 0 else "")
        )
        if delay > 0:
            time.sleep(delay)

    def _call_serial(self, task: Any, ordinal: int, attempts: int = 0) -> Any:
        """In-process execution with the same retry budget as the pool path."""
        while True:
            try:
                return _run_task(
                    self.fn, task, self.plan, ordinal, in_pool=False, trace=self.dispatch
                )
            except Exception as error:  # noqa: BLE001 — retried, then wrapped
                attempts += 1
                if attempts > self.policy.max_retries:
                    raise SweepTaskError(
                        ordinal,
                        attempts,
                        f"failed: {type(error).__name__}: {error}",
                        _task_key(task),
                    ) from error
                _STATS.retries += 1
                obs.event(
                    "supervise.retry",
                    ordinal=ordinal,
                    attempt=attempts,
                    reason=f"failed: {type(error).__name__}",
                )
                delay = self.policy.backoff_delay(attempts - 1)
                _log(
                    f"task {ordinal} failed: {type(error).__name__}: {error}; "
                    f"retry {attempts}/{self.policy.max_retries}"
                    + (f" in {delay:g}s" if delay > 0 else "")
                )
                if delay > 0:
                    time.sleep(delay)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    n_workers: int | None = None,
    policy: FailurePolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, optionally across a supervised process pool.

    Results preserve the input order regardless of completion order.  With
    one worker (or one item) the pool is bypassed; if ``fn`` or the probed
    representative item cannot be pickled the call degrades to serial
    execution with a warning so that closures passed by older callers keep
    working.
    """
    tasks: Sequence[_T] = list(items)
    return parallel_map_chunked(
        fn,
        tasks,
        n_workers=n_workers,
        chunk_size=max(len(tasks), 1),
        policy=policy,
        fault_plan=fault_plan,
    )


def parallel_map_chunked(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    n_workers: int | None = None,
    chunk_size: int | None = None,
    on_chunk: Callable[[int, list[_R]], None] | None = None,
    policy: FailurePolicy | None = None,
    fault_plan: FaultPlan | None = None,
) -> list[_R]:
    """:func:`parallel_map` with a completion callback after every chunk.

    ``on_chunk(start_index, chunk_results)`` fires as each ``chunk_size``
    slice of the input finishes (the sweep layer flushes its point cache
    there).  One supervised process pool is reused across all chunks, so
    checkpointing does not pay a worker-respawn (plus numpy re-import) per
    chunk.  ``policy`` (default: :meth:`FailurePolicy.from_env`) governs
    retry/timeout/degradation; ``fault_plan`` (default: ``REPRO_FAULTS``)
    enables deterministic fault injection for tests.
    """
    tasks: Sequence[_T] = list(items)
    workers = resolve_workers(n_workers)
    if policy is None:
        policy = FailurePolicy.from_env()
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    chunk_size = chunk_size or max(workers, 1) * 4
    use_pool = workers > 1 and len(tasks) > 1
    if use_pool and not _picklable(fn, tasks[0]):
        warnings.warn(
            "parallel_map fell back to serial execution: the task function or its "
            "arguments are not picklable (pass module-level functions / "
            "functools.partial objects to run across processes)",
            RuntimeWarning,
            stacklevel=3,
        )
        use_pool = False

    with obs.tracing(
        "parallel.map", n_tasks=len(tasks), workers=workers, pooled=use_pool
    ):
        stats_before = _STATS.snapshot() if obs.enabled() else None
        supervisor = _Supervisor(fn, workers, policy, plan, total=len(tasks), pooled=use_pool)
        results: list[_R] = []
        try:
            for start in range(0, len(tasks), chunk_size):
                chunk_results = supervisor.run_chunk(tasks[start : start + chunk_size], start)
                results.extend(chunk_results)
                if on_chunk is not None:
                    on_chunk(start, chunk_results)
        finally:
            supervisor.close()
        if stats_before is not None:
            obs.event("supervise.stats", **_STATS.diff(stats_before).as_dict())
        return results
