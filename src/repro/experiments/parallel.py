"""Process-pool execution backend for the experiment sweeps.

The packet-success-rate figures evaluate many independent (MCS, SIR) points;
each point derives every random draw from its own explicit seed (see
:mod:`repro.utils.rng`), so points can execute in any order on any worker
without changing a single sample.  This module provides the small, dependency
free scaffolding for that: :func:`resolve_workers` reads the worker count
(argument, then the ``REPRO_WORKERS`` environment variable, then 1) and
:func:`parallel_map` fans a function over a list of picklable tasks with a
:class:`concurrent.futures.ProcessPoolExecutor`, preserving input order.

Serial execution (``n_workers=1``, the default) bypasses the pool entirely,
and unpicklable work falls back to the serial path with a warning instead of
failing, so figure modules can always call through this layer.
"""

from __future__ import annotations

import os
import pickle
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

__all__ = ["resolve_workers", "parallel_map", "parallel_map_chunked"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve the worker count: explicit argument, ``REPRO_WORKERS``, else 1.

    Zero or negative counts are rejected with an error naming the source
    (the argument or the environment variable), so a typo fails fast instead
    of silently serialising or hanging a pool.
    """
    source = "worker count"
    if n_workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        source = "REPRO_WORKERS"
        try:
            n_workers = int(raw)
        except ValueError as error:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from error
    if n_workers < 1:
        raise ValueError(f"{source} must be at least 1, got {n_workers}")
    return n_workers


def _picklable(*objects: object) -> bool:
    """Probe whether the pool could serialise ``objects``.

    Called with the task function and ONE representative task, not the full
    task list — the pool pickles every task anyway when it dispatches, so
    probing them all would pay the serialisation cost twice on large sweeps.
    """
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    n_workers: int | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, optionally across a process pool.

    Results preserve the input order regardless of completion order.  With
    one worker (or one item) the pool is bypassed; if ``fn`` or the probed
    representative item cannot be pickled the call degrades to serial
    execution with a warning so that closures passed by older callers keep
    working.
    """
    tasks: Sequence[_T] = list(items)
    return parallel_map_chunked(fn, tasks, n_workers=n_workers, chunk_size=max(len(tasks), 1))


def parallel_map_chunked(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    n_workers: int | None = None,
    chunk_size: int | None = None,
    on_chunk: Callable[[int, list[_R]], None] | None = None,
) -> list[_R]:
    """:func:`parallel_map` with a completion callback after every chunk.

    ``on_chunk(start_index, chunk_results)`` fires as each ``chunk_size``
    slice of the input finishes (the sweep layer flushes its point cache
    there).  One process pool is reused across all chunks, so checkpointing
    does not pay a worker-respawn (plus numpy re-import) per chunk.
    """
    tasks: Sequence[_T] = list(items)
    workers = resolve_workers(n_workers)
    chunk_size = chunk_size or max(workers, 1) * 4
    use_pool = workers > 1 and len(tasks) > 1
    if use_pool and not _picklable(fn, tasks[0]):
        warnings.warn(
            "parallel_map fell back to serial execution: the task function or its "
            "arguments are not picklable (pass module-level functions / "
            "functools.partial objects to run across processes)",
            RuntimeWarning,
            stacklevel=3,
        )
        use_pool = False

    def drain(mapper: Callable[[Sequence[_T]], list[_R]]) -> list[_R]:
        results: list[_R] = []
        for start in range(0, len(tasks), chunk_size):
            chunk_results = mapper(tasks[start : start + chunk_size])
            results.extend(chunk_results)
            if on_chunk is not None:
                on_chunk(start, chunk_results)
        return results

    if not use_pool:
        return drain(lambda chunk: [fn(task) for task in chunk])
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return drain(lambda chunk: list(pool.map(fn, chunk)))
