"""Process-pool execution backend for the experiment sweeps.

The packet-success-rate figures evaluate many independent (MCS, SIR) points;
each point derives every random draw from its own explicit seed (see
:mod:`repro.utils.rng`), so points can execute in any order on any worker
without changing a single sample.  This module provides the small, dependency
free scaffolding for that: :func:`resolve_workers` reads the worker count
(argument, then the ``REPRO_WORKERS`` environment variable, then 1) and
:func:`parallel_map` fans a function over a list of picklable tasks with a
:class:`concurrent.futures.ProcessPoolExecutor`, preserving input order.

Serial execution (``n_workers=1``, the default) bypasses the pool entirely,
and unpicklable work falls back to the serial path with a warning instead of
failing, so figure modules can always call through this layer.
"""

from __future__ import annotations

import os
import pickle
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

__all__ = ["resolve_workers", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(n_workers: int | None = None) -> int:
    """Resolve the worker count: explicit argument, ``REPRO_WORKERS``, else 1."""
    if n_workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 1
        try:
            n_workers = int(raw)
        except ValueError as error:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from error
    if n_workers < 1:
        raise ValueError(f"worker count must be at least 1, got {n_workers}")
    return n_workers


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    n_workers: int | None = None,
) -> list[_R]:
    """Apply ``fn`` to every item, optionally across a process pool.

    Results preserve the input order regardless of completion order.  With
    one worker (or one item) the pool is bypassed; if ``fn`` or the items
    cannot be pickled the call degrades to serial execution with a warning so
    that closures passed by older callers keep working.
    """
    tasks: Sequence[_T] = list(items)
    workers = resolve_workers(n_workers)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    if not _picklable(fn, tasks):
        warnings.warn(
            "parallel_map fell back to serial execution: the task function or its "
            "arguments are not picklable (pass module-level functions / "
            "functools.partial objects to run across processes)",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(fn, tasks))
