"""Figure 5 — why a naive multi-segment decoder is not enough.

Packet success rate versus guard band for the standard receiver, the Oracle
(genie segment selection) and the naive average-distance decoder (Eq. 3),
with a single adjacent-channel interferer, QPSK 3/4, at SIR -10/-20/-30 dB.
The paper's point: at -10 dB the naive decoder matches the Oracle, but at
-20/-30 dB it collapses because outlier segments destroy the arithmetic mean.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, aci_scenario, build_receivers, default_profile
from repro.experiments.link import packet_success_rate
from repro.experiments.results import FigureResult
from repro.phy.subcarriers import DOT11G_SUBCARRIER_SPACING_HZ

__all__ = ["run", "run_all", "main", "GUARD_BAND_SUBCARRIERS"]

#: Guard-band sweep in subcarriers (0 to 20 MHz at 312.5 kHz spacing).
GUARD_BAND_SUBCARRIERS: tuple[int, ...] = (0, 8, 16, 32, 64)

RECEIVER_NAMES = ("standard", "oracle", "naive")
MCS_NAME = "qpsk-3/4"
N_SEGMENTS = 16


def run(
    profile: ExperimentProfile | None = None,
    sir_db: float = -20.0,
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
) -> FigureResult:
    """One panel of Figure 5 (a single SIR value)."""
    profile = profile or default_profile()
    series: dict[str, list[float]] = {name: [] for name in RECEIVER_NAMES}
    guard_mhz = []
    for guard in guard_band_subcarriers:
        scenario = aci_scenario(
            MCS_NAME,
            sir_db=sir_db,
            payload_length=profile.payload_length,
            guard_subcarriers=guard,
            edge_window_length=0,
        )
        receivers = build_receivers(scenario.allocation, RECEIVER_NAMES, n_segments=N_SEGMENTS)
        stats = packet_success_rate(scenario, receivers, profile.n_packets, seed=profile.seed)
        for name in RECEIVER_NAMES:
            series[name].append(stats[name].success_percent)
        guard_mhz.append(round(guard * DOT11G_SUBCARRIER_SPACING_HZ / 1e6, 3))
    return FigureResult(
        figure="Figure 5",
        title=f"Packet success rate vs guard band (naive decoder), SIR {sir_db:g} dB, {MCS_NAME}",
        x_label="Guard band (MHz)",
        x_values=guard_mhz,
        series={
            "Standard OFDM Receiver": series["standard"],
            "Oracle Scheme": series["oracle"],
            "Naive Decoder": series["naive"],
        },
        notes=["single adjacent-channel interferer with rectangular symbol edges"],
    )


def run_all(profile: ExperimentProfile | None = None) -> dict[float, FigureResult]:
    """All three panels (SIR -10, -20, -30 dB), as in the paper."""
    profile = profile or default_profile()
    return {sir: run(profile, sir_db=sir) for sir in (-10.0, -20.0, -30.0)}


def main() -> None:
    """Print all three panels of Figure 5."""
    from repro.experiments.results import format_table

    for sir, result in run_all().items():
        print(format_table(result))
        print()


if __name__ == "__main__":
    main()
