"""Figure 5 — why a naive multi-segment decoder is not enough.

Packet success rate versus guard band for the standard receiver, the Oracle
(genie segment selection) and the naive average-distance decoder (Eq. 3),
with a single adjacent-channel interferer, QPSK 3/4, at SIR -10/-20/-30 dB.
The paper's point: at -10 dB the naive decoder matches the Oracle, but at
-20/-30 dB it collapses because outlier segments destroy the arithmetic mean.

Each panel is one declarative :class:`~repro.api.ExperimentSpec`: the three
receivers are registry-resolved :class:`~repro.api.ReceiverSpec` entries
with a 16-segment budget, and each guard-band value is one sweep point on
the shared execution layer, so ``--workers``/``--engine`` and the
persistent point cache apply.
"""

from __future__ import annotations

from repro.api import (
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_experiment_spec,
)
from repro.experiments.config import ExperimentProfile
from repro.experiments.results import FigureResult

__all__ = ["SPEC", "build_spec", "run", "run_all", "main", "GUARD_BAND_SUBCARRIERS"]

#: Guard-band sweep in subcarriers (0 to 20 MHz at 312.5 kHz spacing).
GUARD_BAND_SUBCARRIERS: tuple[int, ...] = (0, 8, 16, 32, 64)

MCS_NAME = "qpsk-3/4"
N_SEGMENTS = 16


def build_spec(
    sir_db: float = -20.0,
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
    engine: str | None = None,
) -> ExperimentSpec:
    """One panel of Figure 5 (a single SIR value) as a spec."""
    return ExperimentSpec(
        name="fig5",
        figure="Figure 5",
        title=f"Packet success rate vs guard band (naive decoder), SIR {sir_db:g} dB, {MCS_NAME}",
        scenario=ScenarioSpec(
            mcs_name=MCS_NAME,
            sir_db=sir_db,
            interferers=(InterfererSpec(kind="aci", edge_window_length=0),),
        ),
        receivers=(
            ReceiverSpec("standard", n_segments=N_SEGMENTS, display="Standard OFDM Receiver"),
            ReceiverSpec("oracle", n_segments=N_SEGMENTS, display="Oracle Scheme"),
            ReceiverSpec("naive", n_segments=N_SEGMENTS, display="Naive Decoder"),
        ),
        sweep=SweepSpec(
            axes=(SweepAxis("guard_subcarriers", values=tuple(guard_band_subcarriers)),)
        ),
        series_label="{receiver}",
        x_label="Guard band (MHz)",
        x_transform="guard_mhz",
        notes=("single adjacent-channel interferer with rectangular symbol edges",),
        engine=engine,
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None,
    sir_db: float = -20.0,
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """One panel of Figure 5 (a single SIR value)."""
    return run_experiment_spec(
        build_spec(sir_db, guard_band_subcarriers, engine=engine), profile, n_workers=n_workers
    )


def run_all(profile: ExperimentProfile | None = None) -> dict[float, FigureResult]:
    """All three panels (SIR -10, -20, -30 dB), as in the paper."""
    return {sir: run(profile, sir_db=sir) for sir in (-10.0, -20.0, -30.0)}


def main() -> None:
    """Print all three panels of Figure 5."""
    from repro.experiments.results import format_table

    for sir, result in run_all().items():
        print(format_table(result))
        print()


if __name__ == "__main__":
    main()
