"""Figure 5 — why a naive multi-segment decoder is not enough.

Packet success rate versus guard band for the standard receiver, the Oracle
(genie segment selection) and the naive average-distance decoder (Eq. 3),
with a single adjacent-channel interferer, QPSK 3/4, at SIR -10/-20/-30 dB.
The paper's point: at -10 dB the naive decoder matches the Oracle, but at
-20/-30 dB it collapses because outlier segments destroy the arithmetic mean.

Each guard-band value is one sweep point on the shared execution layer, so
``--workers``/``--engine`` and the persistent point cache apply.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.config import ExperimentProfile, aci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import SweepPoint, execute_points, run_sweep_point
from repro.phy.subcarriers import DOT11G_SUBCARRIER_SPACING_HZ

__all__ = ["run", "run_all", "main", "GUARD_BAND_SUBCARRIERS"]

#: Guard-band sweep in subcarriers (0 to 20 MHz at 312.5 kHz spacing).
GUARD_BAND_SUBCARRIERS: tuple[int, ...] = (0, 8, 16, 32, 64)

RECEIVER_NAMES = ("standard", "oracle", "naive")
MCS_NAME = "qpsk-3/4"
N_SEGMENTS = 16


def run(
    profile: ExperimentProfile | None = None,
    sir_db: float = -20.0,
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """One panel of Figure 5 (a single SIR value)."""
    profile = profile or default_profile()
    points = [
        SweepPoint(
            scenario_factory=partial(
                aci_scenario,
                payload_length=profile.payload_length,
                guard_subcarriers=guard,
                edge_window_length=0,
            ),
            mcs_name=MCS_NAME,
            sir_db=sir_db,
            receiver_names=RECEIVER_NAMES,
            n_packets=profile.n_packets,
            seed=profile.seed,
            engine=engine,
            n_segments=N_SEGMENTS,
        )
        for guard in guard_band_subcarriers
    ]
    outcomes = execute_points(run_sweep_point, points, n_workers=n_workers)

    series: dict[str, list[float]] = {name: [] for name in RECEIVER_NAMES}
    for outcome in outcomes:
        for name in RECEIVER_NAMES:
            series[name].append(outcome[name])
    guard_mhz = [
        round(guard * DOT11G_SUBCARRIER_SPACING_HZ / 1e6, 3) for guard in guard_band_subcarriers
    ]
    return FigureResult(
        figure="Figure 5",
        title=f"Packet success rate vs guard band (naive decoder), SIR {sir_db:g} dB, {MCS_NAME}",
        x_label="Guard band (MHz)",
        x_values=guard_mhz,
        series={
            "Standard OFDM Receiver": series["standard"],
            "Oracle Scheme": series["oracle"],
            "Naive Decoder": series["naive"],
        },
        notes=["single adjacent-channel interferer with rectangular symbol edges"],
    )


def run_all(profile: ExperimentProfile | None = None) -> dict[float, FigureResult]:
    """All three panels (SIR -10, -20, -30 dB), as in the paper."""
    profile = profile or default_profile()
    return {sir: run(profile, sir_db=sir) for sir in (-10.0, -20.0, -30.0)}


def main() -> None:
    """Print all three panels of Figure 5."""
    from repro.experiments.results import format_table

    for sir, result in run_all().items():
        print(format_table(result))
        print()


if __name__ == "__main__":
    main()
