"""Persistent result artifacts and point-level sweep caching.

Two durable layers back the experiment harness:

* :class:`ResultStore` — one ``results/<experiment>.json`` artifact per
  figure/table, wrapping the :class:`~repro.experiments.results.FigureResult`
  payload with a schema version and the execution key (profile, engine and a
  content hash of the configuration) so downstream consumers can reload a
  result without re-running the sweep and can tell which configuration
  produced it.
* :class:`PointCache` — a JSON file of completed sweep-point outcomes keyed
  by a stable content hash of each point's task.  The sweep execution layer
  (:func:`repro.experiments.sweeps.execute_points`) consults it so that a
  re-run with the same profile skips finished points and an interrupted
  ``--profile full`` run resumes instead of restarting.

Keys come from :func:`stable_key`: a SHA-256 over a canonical, recursive
serialisation of the task object (dataclasses, ``functools.partial`` objects
and module-level callables are resolved to their structural content, not
their ``id()``), so the same logical point hashes identically across
processes and interpreter runs.

Durability: every record is written atomically (write-temp + ``os.replace``)
and stamped with a ``checksum`` (SHA-256 over the canonical JSON of the
record minus the checksum field).  A file that fails to parse or verify —
torn by a crash mid-rename on a non-atomic filesystem, truncated by a full
disk, hand-edited — is *quarantined*: renamed to ``<name>.corrupt`` with a
warning, after which the run continues from the last good state (an empty
cache, a fresh manifest) instead of raising or silently discarding
checkpointed work.  Files written by older builds carry no checksum and are
still accepted.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Any

import numpy as np

from repro.experiments.results import FigureResult

__all__ = [
    "stable_key",
    "config_hash",
    "write_json_artifact",
    "ResultStore",
    "PointCache",
    "CampaignManifest",
]

#: Version of the on-disk artifact/cache envelope (the FigureResult payload
#: carries its own ``schema_version``).
STORE_SCHEMA_VERSION = 1

#: Environment variable pointing the sweep layer at a point-cache directory.
CACHE_ENV_VAR = "REPRO_RESULT_CACHE"


# --------------------------------------------------------------------------- #
# Stable content hashing                                                      #
# --------------------------------------------------------------------------- #
def _canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable structure that is stable across
    interpreter runs (no ``id()``-dependent or address-dependent content)."""
    # Numpy scalars must hash like the equivalent Python scalar: tasks built
    # from numpy matrices (e.g. per-link SIRs in repro.network.links) would
    # otherwise key on numpy's version-dependent repr and never match the
    # same logical point built from plain floats.
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (float, np.floating)):
        # repr of the plain float is the shortest round-trip representation:
        # exact and stable (np.floating's own repr is "np.float64(...)" on
        # numpy >= 2, and np.float32 does not even subclass float).
        return ["float", repr(float(obj))]
    if isinstance(obj, (list, tuple)):
        return ["seq", [_canonical(item) for item in obj]]
    if isinstance(obj, dict):
        return ["map", sorted((str(key), _canonical(value)) for key, value in obj.items())]
    if isinstance(obj, functools.partial):
        return [
            "partial",
            _canonical(obj.func),
            _canonical(obj.args),
            _canonical(obj.keywords),
        ]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}
        return ["data", type(obj).__module__, type(obj).__qualname__, _canonical(fields)]
    if callable(obj):
        return ["fn", getattr(obj, "__module__", ""), getattr(obj, "__qualname__", repr(obj))]
    return ["repr", repr(obj)]


def stable_key(obj: Any) -> str:
    """SHA-256 hex digest of the canonical serialisation of ``obj``."""
    payload = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def config_hash(*objects: Any) -> str:
    """Short (12 hex digit) content hash identifying an execution config."""
    return stable_key(list(objects))[:12]


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def write_json_artifact(path: str | Path, record: dict[str, Any], indent: int | None = 2) -> Path:
    """Write one JSON artifact with a checksum stamp, atomically.

    The public funnel for every module that persists a standalone JSON
    record (campaign summaries, reports): the record gains the same
    ``checksum`` field the store's own artifacts carry, so
    :func:`_read_record` — and anything else that verifies artifacts — can
    detect torn or tampered files and quarantine them on the next read.
    Parent directories are created as needed.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(target, json.dumps(_stamped(record), indent=indent) + "\n")
    return target


# --------------------------------------------------------------------------- #
# Record integrity: checksum stamping and corrupt-file quarantine             #
# --------------------------------------------------------------------------- #
def _record_checksum(record: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON of ``record`` minus its checksum."""
    body = {key: value for key, value in record.items() if key != "checksum"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _stamped(record: dict[str, Any]) -> dict[str, Any]:
    """``record`` with its integrity checksum filled in."""
    return {**record, "checksum": _record_checksum(record)}


def _quarantine(path: Path, what: str, reason: str) -> Path:
    """Move a corrupt file out of the way and warn; never raises.

    The quarantined copy (``<name>.corrupt``) is preserved for post-mortem
    inspection; the caller then proceeds from its last good state.
    """
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
        moved = True
    except OSError:
        moved = False
    warnings.warn(
        f"{what} {path} is corrupt ({reason}); "
        + (f"quarantined to {target.name}" if moved else "it could not be quarantined")
        + " — continuing from the last good state",
        RuntimeWarning,
        stacklevel=4,
    )
    return target


def _read_record(path: Path, what: str) -> dict[str, Any] | None:
    """Read one checksummed JSON record, quarantining anything unreadable.

    Returns ``None`` when the file is absent or was corrupt (already
    quarantined, with a warning).  Records without a ``checksum`` field were
    written by an older build and are accepted as-is.
    """
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as error:
        _quarantine(path, what, f"unreadable: {error}")
        return None
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        _quarantine(path, what, f"invalid JSON: {error}")
        return None
    if not isinstance(record, dict):
        _quarantine(path, what, f"expected a JSON object, got {type(record).__name__}")
        return None
    stored = record.get("checksum")
    if stored is not None and stored != _record_checksum(record):
        _quarantine(path, what, "checksum mismatch")
        return None
    return record


# --------------------------------------------------------------------------- #
# Figure/table artifacts                                                      #
# --------------------------------------------------------------------------- #
class ResultStore:
    """Directory of reloadable ``<experiment>.json`` result artifacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        """Artifact path of one experiment.

        ``name`` must be a single path component — anything else would
        escape (or crash inside) the store directory.
        """
        if not name or Path(name).name != name:
            raise ValueError(
                f"experiment name {name!r} is not a valid artifact name "
                "(it must be a single path component)"
            )
        return self.root / f"{name}.json"

    def save(
        self,
        name: str,
        result: FigureResult,
        profile: Any = None,
        engine: str | None = None,
        extra: dict[str, Any] | None = None,
        spec_hash: str | None = None,
    ) -> Path:
        """Write the artifact for ``name`` and return its path.

        ``profile`` is the :class:`ExperimentProfile` (or ``None`` for static
        analyses); the artifact records its fields plus a content hash of
        (experiment, profile, engine) so a reloaded artifact identifies the
        run that produced it.  ``spec_hash`` — the content hash of the
        resolved :class:`repro.api.ExperimentSpec` that produced the result —
        is recorded and folded into the config hash when provided, so two
        artifacts under the same name but from different scenario specs are
        distinguishable.
        """
        config = (
            dataclasses.asdict(profile)
            if dataclasses.is_dataclass(profile) and not isinstance(profile, type)
            else None
        )
        key_parts = [name, profile, engine] + ([spec_hash] if spec_hash is not None else [])
        record = {
            "schema_version": STORE_SCHEMA_VERSION,
            "experiment": name,
            "profile": getattr(profile, "name", None),
            "engine": engine,
            "config_hash": config_hash(*key_parts),
            "spec_hash": spec_hash,
            "config": config,
            # repro-lint: disable=RPR002,RPR011 -- provenance timestamp (not a
            # measured interval) recording when the artifact was produced;
            # excluded from config_hash, so results stay pure functions of the
            # configuration.
            "created_unix": round(time.time(), 3),
            "result": result.to_dict(),
        }
        if extra:
            record.update(extra)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(name)
        _atomic_write(path, json.dumps(_stamped(record), indent=2) + "\n")
        return path

    def load_record(self, name: str) -> dict[str, Any]:
        """Reload the raw artifact record (envelope + result payload).

        A missing artifact raises ``FileNotFoundError`` as before; a corrupt
        one is quarantined to ``<name>.json.corrupt`` and raises
        ``ValueError`` naming the quarantine file (artifacts are re-creatable
        by re-running the experiment, so there is no partial state to resume
        from).
        """
        path = self.path_for(name)
        if not path.is_file():
            raise FileNotFoundError(f"no artifact for experiment {name!r} at {path}")
        record = _read_record(path, "result artifact")
        if record is None:
            raise ValueError(
                f"artifact {name!r} was corrupt and has been quarantined to "
                f"{path.name}.corrupt; re-run the experiment to regenerate it"
            )
        version = record.get("schema_version")
        if not isinstance(version, int) or version > STORE_SCHEMA_VERSION:
            raise ValueError(
                f"artifact {name!r} has unsupported schema version {version!r} "
                f"(this build reads <= {STORE_SCHEMA_VERSION})"
            )
        return record

    def load(self, name: str) -> FigureResult:
        """Reload one experiment's :class:`FigureResult`."""
        return FigureResult.from_dict(self.load_record(name)["result"])

    def names(self) -> list[str]:
        """Experiments with an artifact in the store."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))


# --------------------------------------------------------------------------- #
# Point-level sweep cache                                                     #
# --------------------------------------------------------------------------- #
class PointCache:
    """JSON-file-backed map of completed sweep-point outcomes.

    Outcomes must be JSON-serialisable (the sweep task functions return
    dicts/lists of numbers, which round-trip exactly), so a cached value is
    bit-identical to a freshly computed one.  The cache is flushed after
    every chunk of completed points, which is what makes an interrupted run
    resumable.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, Any] = {}
        record = _read_record(self.path, "point cache")
        if record is not None and record.get("schema_version") == STORE_SCHEMA_VERSION:
            points = record.get("points")
            if isinstance(points, dict):
                self._entries = points
            elif points is not None:
                _quarantine(
                    self.path, "point cache",
                    f"'points' should be an object, got {type(points).__name__}",
                )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Any:
        """Cached outcome for ``key`` (``None`` when absent)."""
        return self._entries.get(key)

    def update(self, outcomes: dict[str, Any]) -> None:
        """Record completed points and flush the cache file."""
        self._entries.update(outcomes)
        self.flush()

    def flush(self) -> None:
        """Write the cache file atomically, merging concurrent writers' points.

        Another ``--resume`` run may share this cache file (every
        packet-success-rate figure funnels through the same task function),
        so the file is re-read and merged under this process's entries before
        the atomic replace — a flush never discards points another run
        checkpointed in the meantime.  Both writers compute identical
        outcomes for identical keys, so merge order cannot change a value.

        A corrupt on-disk file is quarantined with a warning (it used to be
        silently discarded, losing every previously checkpointed point
        without a trace) and the flush proceeds with this process's entries —
        the last good state.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        record = _read_record(self.path, "point cache")
        if record is not None and record.get("schema_version") == STORE_SCHEMA_VERSION:
            merged = record.get("points")
            if isinstance(merged, dict):
                merged.update(self._entries)
                self._entries = merged
        record = {"schema_version": STORE_SCHEMA_VERSION, "points": self._entries}
        _atomic_write(self.path, json.dumps(_stamped(record)) + "\n")


# --------------------------------------------------------------------------- #
# Campaign manifest (adaptive-sampling checkpoints)                           #
# --------------------------------------------------------------------------- #
class CampaignManifest:
    """Durable state of one adaptive campaign run (checkpoint/resume).

    The campaign scheduler (:mod:`repro.campaigns.scheduler`) checkpoints
    after every sampling round: per deduplicated grid cell the manifest
    records the exact accumulated ``[n_success, n_packets]`` counts per
    receiver, the number of rounds spent, whether the cell met its precision
    target and the achieved Wilson confidence half-width.  A ``--resume``
    run reloads the manifest (the campaign content hash must match — a
    manifest from a *different* campaign refuses to resume instead of
    silently mixing results) and continues from the recorded counts; because
    every round's packets draw from global-packet-index RNG streams, the
    resumed run finishes with counts bit-identical to an uninterrupted one.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.campaign: str | None = None
        self.campaign_hash: str | None = None
        self.rounds_completed = 0
        self.points: dict[str, dict[str, Any]] = {}
        record = _read_record(self.path, "campaign manifest")
        # A corrupt manifest has been quarantined: start fresh.  The campaign
        # re-runs from round 0, and the global-packet-index RNG streams make
        # the recomputed counts bit-identical to the lost checkpoint's.
        self.existed = record is not None
        if record is not None:
            version = record.get("schema_version")
            if not isinstance(version, int) or version > STORE_SCHEMA_VERSION:
                raise ValueError(
                    f"campaign manifest {self.path} has unsupported schema version "
                    f"{version!r} (this build reads <= {STORE_SCHEMA_VERSION})"
                )
            self.campaign = record.get("campaign")
            self.campaign_hash = record.get("campaign_hash")
            self.rounds_completed = int(record.get("rounds_completed", 0))
            points = record.get("points")
            self.points = points if isinstance(points, dict) else {}

    def begin(self, campaign: str, campaign_hash: str) -> None:
        """Bind the manifest to one campaign, validating a resumed file.

        Resuming under a different campaign content hash would merge counts
        from incompatible runs; it raises instead.
        """
        if self.existed and self.campaign_hash != campaign_hash:
            raise ValueError(
                f"manifest {self.path} belongs to campaign "
                f"{self.campaign!r} (hash {self.campaign_hash}), not to "
                f"{campaign!r} (hash {campaign_hash}); use a fresh --out directory"
            )
        self.campaign = campaign
        self.campaign_hash = campaign_hash

    def counts(self, key: str) -> dict[str, list[int]]:
        """Accumulated ``{receiver: [n_success, n_packets]}`` of one cell."""
        record = self.points.get(key)
        if record is None:
            return {}
        return {name: list(pair) for name, pair in record.get("receivers", {}).items()}

    def spent_rounds(self, key: str) -> int:
        """Sampling rounds one cell has already consumed (0 when unknown)."""
        record = self.points.get(key)
        return 0 if record is None else int(record.get("rounds", 0))

    def record_point(
        self,
        key: str,
        receivers: dict[str, list[int]],
        rounds: int,
        converged: bool,
        ci_pct: dict[str, float],
        experiments: list[str],
    ) -> None:
        """Replace one cell's checkpoint (call :meth:`flush` to persist)."""
        self.points[key] = {
            "receivers": {name: list(pair) for name, pair in receivers.items()},
            "rounds": rounds,
            "converged": converged,
            "ci_pct": ci_pct,
            "experiments": sorted(experiments),
        }

    def flush(self) -> None:
        """Write the manifest atomically."""
        record = {
            "schema_version": STORE_SCHEMA_VERSION,
            "campaign": self.campaign,
            "campaign_hash": self.campaign_hash,
            "rounds_completed": self.rounds_completed,
            "points": self.points,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.path, json.dumps(_stamped(record), indent=2) + "\n")
