"""Experiment harness: one module per table/figure of the paper's evaluation."""

from repro.experiments.config import (
    FULL_PROFILE,
    PAPER_MCS_SET,
    QUICK_PROFILE,
    SNR_FOR_MCS,
    ExperimentProfile,
    aci_scenario,
    build_receivers,
    cci_scenario,
    default_profile,
)
from repro.experiments.link import (
    LinkResult,
    PacketStats,
    default_engine,
    packet_success_rate,
    psr,
    symbol_error_rate,
)
from repro.experiments.faults import FaultPlan, InjectedFault
from repro.experiments.parallel import (
    FailurePolicy,
    SupervisorStats,
    SweepExecutionError,
    SweepTaskError,
    parallel_map,
    reset_supervisor_stats,
    resolve_workers,
    supervisor_stats,
)
from repro.experiments.results import FigureResult, format_csv, format_table
from repro.experiments.store import PointCache, ResultStore

__all__ = [
    "ExperimentProfile",
    "FULL_PROFILE",
    "FailurePolicy",
    "FaultPlan",
    "FigureResult",
    "InjectedFault",
    "LinkResult",
    "PAPER_MCS_SET",
    "PacketStats",
    "QUICK_PROFILE",
    "SNR_FOR_MCS",
    "aci_scenario",
    "build_receivers",
    "cci_scenario",
    "PointCache",
    "ResultStore",
    "default_engine",
    "default_profile",
    "format_csv",
    "format_table",
    "packet_success_rate",
    "parallel_map",
    "psr",
    "reset_supervisor_stats",
    "resolve_workers",
    "supervisor_stats",
    "SupervisorStats",
    "SweepExecutionError",
    "SweepTaskError",
    "symbol_error_rate",
]
