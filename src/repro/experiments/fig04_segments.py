"""Figure 4 — the opportunity in the cyclic prefix.

(a) Interference power per subcarrier for the standard FFT window versus the
    Oracle's best-segment choice (ACI at -20 dB SIR): the Oracle realises a
    much sharper spectrum mask, about 20 dB below the standard receiver
    across the sender's band.
(b) Interference power versus FFT segment index on a subcarrier adjacent to
    the interferer band for SIR -10/-20/-30 dB: the power varies by tens of
    dB across segments, and the best segment is generally not the standard
    (last) one.
(c) A constellation-plane illustration (BPSK, five segments): most segments
    cluster near the transmitted lattice point while an outlier segment sits
    near the other point — the situation that defeats the naive decoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import ExperimentSpec, register_analysis, run_experiment_spec
from repro.core.oracle import interference_power_per_segment
from repro.experiments.config import ExperimentProfile, aci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import execute_points
from repro.receiver.frontend import FrontEnd
from repro.utils.dsp import linear_to_db
from repro.utils.rng import child_rng

__all__ = [
    "SPEC",
    "build_spec",
    "run",
    "run_subcarrier_profile",
    "run_segment_profile",
    "run_constellation",
    "main",
]

#: Number of FFT segments used in the paper's Fig. 4 analysis.
N_SEGMENTS = 16


def _analysis_front_end() -> FrontEnd:
    return FrontEnd(n_segments=N_SEGMENTS)


def run_subcarrier_profile(
    profile: ExperimentProfile | None = None, sir_db: float = -20.0, seed: int | None = None
) -> FigureResult:
    """Figure 4a: interference power per subcarrier, standard vs Oracle."""
    profile = profile or default_profile()
    scenario = aci_scenario(
        "qpsk-1/2", sir_db=sir_db, payload_length=profile.payload_length, edge_window_length=0
    )
    rx = scenario.realize(child_rng(profile.seed if seed is None else seed, 4, 1))
    # The per-subcarrier mask analysis uses every ISI-free CP sample, i.e. the
    # full set of segments available to the Oracle.
    front = FrontEnd(max_segments=rx.allocation.cp_length).process(rx)
    power = interference_power_per_segment(rx, front)  # (P, n_symbols, fft)
    mean_power = power.mean(axis=1)                    # (P, fft)
    standard = mean_power[-1]
    oracle = mean_power.min(axis=0)
    # Normalise to the peak interference power, as in the paper's plot.
    reference = float(mean_power.max())
    bins = list(range(rx.allocation.fft_size))
    return FigureResult(
        figure="Figure 4a",
        title=f"Per-subcarrier interference power, ACI at {sir_db:g} dB SIR",
        x_label="Subcarrier index",
        x_values=bins,
        y_label="Interference power (dB, normalised)",
        series={
            "Standard Receiver": list(linear_to_db(standard / reference)),
            "Oracle Receiver": list(linear_to_db(oracle / reference)),
        },
        notes=[
            "sender occupies subcarriers 1-64, interferer 69-132 (4-subcarrier guard band)",
            "Oracle picks, per subcarrier, the FFT segment with the least interference",
        ],
    )


@dataclass(frozen=True)
class _SegmentProfileTask:
    """One SIR point of the Fig. 4b segment-profile analysis (picklable)."""

    sir_db: float
    payload_length: int
    seed: int
    subcarrier_offset_from_edge: int


def _segment_profile_point(task: _SegmentProfileTask) -> list[float]:
    """Per-segment normalised interference power (dB) for one SIR value.

    Module-level so it pickles into pool workers; all randomness derives from
    ``task.seed``.
    """
    scenario = aci_scenario(
        "qpsk-1/2", sir_db=task.sir_db, payload_length=task.payload_length, edge_window_length=0
    )
    rx = scenario.realize(child_rng(task.seed, 4, 2))
    front = _analysis_front_end().process(rx)
    power = interference_power_per_segment(rx, front)
    # Pick a data subcarrier close to the interferer band edge (paper: 63).
    occupied = rx.allocation.occupied_bin_array()
    target_bin = int(occupied.max()) - task.subcarrier_offset_from_edge
    per_segment = power[:, :, target_bin].mean(axis=1)
    normalised = per_segment / per_segment.max()
    return [float(value) for value in linear_to_db(normalised)]


def run_segment_profile(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    subcarrier_offset_from_edge: int = 4,
    seed: int | None = None,
    n_workers: int | None = None,
) -> FigureResult:
    """Figure 4b: interference power per FFT segment on an edge subcarrier.

    Each SIR value is one task on the shared sweep-execution layer, so
    ``--workers`` and the persistent point cache apply.
    """
    profile = profile or default_profile()
    x_values = list(range(1, N_SEGMENTS + 1))
    tasks = [
        _SegmentProfileTask(
            sir_db=sir_db,
            payload_length=profile.payload_length,
            seed=profile.seed if seed is None else seed,
            subcarrier_offset_from_edge=subcarrier_offset_from_edge,
        )
        for sir_db in sir_values_db
    ]
    outcomes = execute_points(_segment_profile_point, tasks, n_workers=n_workers)
    series = {
        f"SIR {task.sir_db:g} dB": list(outcome) for task, outcome in zip(tasks, outcomes)
    }
    return FigureResult(
        figure="Figure 4b",
        title="Interference power across FFT segments (subcarrier near the interferer edge)",
        x_label="FFT segment index",
        x_values=x_values,
        y_label="Interference power (dB, normalised to the worst segment)",
        series=series,
    )


def run_constellation(
    profile: ExperimentProfile | None = None,
    sir_db: float = -20.0,
    n_segments: int = 5,
    seed: int | None = None,
) -> FigureResult:
    """Figure 4c: BPSK observations of one subcarrier across five segments."""
    profile = profile or default_profile()
    scenario = aci_scenario(
        "bpsk-1/2", sir_db=sir_db, payload_length=profile.payload_length, edge_window_length=0
    )
    rx = scenario.realize(child_rng(profile.seed if seed is None else seed, 4, 3))
    front = FrontEnd(n_segments=n_segments).process(rx)
    observations = front.data_observations()  # (P, n_symbols, n_data)
    data_bins = rx.allocation.data_bin_array()
    edge_index = int(np.argmax(data_bins))
    points = observations[:, 0, edge_index]
    return FigureResult(
        figure="Figure 4c",
        title="Received signal of one subcarrier in five FFT segments (BPSK)",
        x_label="FFT segment index",
        x_values=list(range(1, n_segments + 1)),
        y_label="Constellation coordinates",
        series={
            "real": [float(value.real) for value in points],
            "imag": [float(value.imag) for value in points],
        },
        notes=[
            f"transmitted lattice point: {rx.tx_frame.data_points[0, edge_index]:+.0f}",
            "lattice points of BPSK are -1 and +1 on the real axis",
        ],
    )


@register_analysis("fig4-segment-profile")
def _segment_profile_analysis(
    profile: ExperimentProfile,
    n_workers: int | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    subcarrier_offset_from_edge: int = 4,
) -> FigureResult:
    """Registered analysis runner behind the Figure 4 spec."""
    return run_segment_profile(
        profile,
        sir_values_db=tuple(sir_values_db),
        subcarrier_offset_from_edge=subcarrier_offset_from_edge,
        n_workers=n_workers,
    )


def build_spec() -> ExperimentSpec:
    """The canonical Figure 4 spec (the representative segment profile)."""
    return ExperimentSpec(
        name="fig4",
        figure="Figure 4b",
        title="Interference power across FFT segments (subcarrier near the interferer edge)",
        kind="analysis",
        analysis="fig4-segment-profile",
        params={"sir_values_db": [-10.0, -20.0, -30.0], "subcarrier_offset_from_edge": 4},
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None, n_workers: int | None = None
) -> FigureResult:
    """Representative result for Figure 4 (the segment profile, Fig. 4b)."""
    return run_experiment_spec(SPEC, profile, n_workers=n_workers)


def main() -> None:
    """Print all three panels of Figure 4."""
    from repro.experiments.results import format_table

    profile = default_profile()
    for result in (
        run_subcarrier_profile(profile),
        run_segment_profile(profile),
        run_constellation(profile),
    ):
        print(format_table(result))
        print()


if __name__ == "__main__":
    main()
