"""Figure 11 — packet success rate vs SIR, single co-channel interferer.

Standard 802.11g allocation, interferer on the same subcarriers with carrier
sensing disabled.  Co-channel interference is harsher than ACI (it is in-band
and hits every subcarrier), the tolerated SIR range is narrower, and
CPRecycle's gain is smaller but still material.

The figure is one declarative :class:`~repro.api.ExperimentSpec` (``SPEC``)
run through the :func:`~repro.api.run_experiment_spec` facade.
"""

from __future__ import annotations

from repro.api import (
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_experiment_spec,
)
from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET
from repro.experiments.results import FigureResult

__all__ = ["SPEC", "build_spec", "run", "main"]


def build_spec(
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-5.0, 25.0),
) -> ExperimentSpec:
    """The canonical Figure 11 spec (optionally with a custom MCS/SIR grid)."""
    return ExperimentSpec(
        name="fig11",
        figure="Figure 11",
        title="PSR vs SIR, single co-channel interferer (802.11g)",
        scenario=ScenarioSpec(interferers=(InterfererSpec(kind="cci"),)),
        receivers=(ReceiverSpec("standard"), ReceiverSpec("cprecycle")),
        sweep=SweepSpec(
            axes=(
                SweepAxis("mcs_name", values=tuple(mcs_names)),
                SweepAxis("sir_db", span=sir_range_db),
            )
        ),
        series_label="{mcs} {receiver}",
        notes=(
            "interferer occupies the same 802.11g subcarriers, clear channel assessment off",
        ),
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-5.0, 25.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with a single co-channel interferer."""
    return run_experiment_spec(build_spec(mcs_names, sir_range_db), profile, n_workers=n_workers)


def main() -> None:
    """Print Figure 11."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
