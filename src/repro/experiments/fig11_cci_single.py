"""Figure 11 — packet success rate vs SIR, single co-channel interferer.

Standard 802.11g allocation, interferer on the same subcarriers with carrier
sensing disabled.  Co-channel interference is harsher than ACI (it is in-band
and hits every subcarrier), the tolerated SIR range is narrower, and
CPRecycle's gain is smaller but still material.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET, cci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import psr_vs_sir, sir_axis

__all__ = ["run", "main"]


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-5.0, 25.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with a single co-channel interferer."""
    profile = profile or default_profile()
    sir_values = sir_axis(sir_range_db[0], sir_range_db[1], profile.n_sir_points)
    return psr_vs_sir(
        figure="Figure 11",
        title="PSR vs SIR, single co-channel interferer (802.11g)",
        scenario_factory=partial(cci_scenario, payload_length=profile.payload_length),
        mcs_names=mcs_names,
        sir_values_db=sir_values,
        profile=profile,
        notes=["interferer occupies the same 802.11g subcarriers, clear channel assessment off"],
        n_workers=n_workers,
    )


def main() -> None:
    """Print Figure 11."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
