"""Deterministic fault injection for the supervised sweep executor.

Every recovery path of the fault-tolerant execution layer
(:mod:`repro.experiments.parallel`) is exercised through this module: a
:class:`FaultPlan` makes task *N* of a dispatched task list raise, hang, or
kill its worker process — reproducibly.  Plans are plain frozen dataclasses
(picklable, so they travel into pool workers with each task) and are enabled
through the ``REPRO_FAULTS`` environment variable, which holds a JSON
object::

    REPRO_FAULTS='{"tasks": {"3": "kill", "5": "raise"}, "state_dir": "/tmp/f"}'
    REPRO_FAULTS='{"seed": 7, "rate": 0.25, "kind": "raise"}'

* ``tasks`` targets explicit task ordinals (the index of the task in the
  dispatched list) with one fault ``kind`` each;
* ``seed``/``rate``/``kind`` target a deterministic pseudo-random subset
  instead: task ``i`` is hit when ``sha256(f"{seed}:{i}")`` maps below
  ``rate`` — the same seed always selects the same tasks, in every process;
* ``times`` bounds how often each targeted ordinal injects (default once),
  so a retried task succeeds and recovery is observable instead of a
  livelock; the bound is enforced across *processes* through marker files
  created with ``O_CREAT | O_EXCL`` under ``state_dir``;
* ``hang_seconds`` sizes the artificial stall of ``hang`` faults.

Fault kinds:

``raise``
    the task raises :class:`InjectedFault` (a ``RuntimeError``);
``hang``
    the task stalls for ``hang_seconds`` before completing normally — under
    a supervisor timeout shorter than the stall this looks like a hung
    worker;
``kill``
    the worker process exits hard with ``os._exit`` (no cleanup, like a
    segfault or an OOM kill), breaking the process pool; outside a pool
    worker it degrades to ``raise`` so serial execution is never killed.

Because every sweep task derives all randomness from its own explicit seed,
a run that completes *under* injected faults is bit-identical to a fault
free run — which is exactly what the fault-injection tests and the CI
crash-recovery smoke assert.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["FAULTS_ENV_VAR", "FAULT_KINDS", "InjectedFault", "FaultPlan"]

#: Environment variable holding the JSON fault plan (empty/unset: no faults).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Valid fault kinds, in the order documented above.
FAULT_KINDS = ("raise", "hang", "kill")

_PLAN_FIELDS = ("tasks", "kind", "seed", "rate", "times", "hang_seconds", "state_dir")

#: Exit status of a ``kill``-faulted worker (arbitrary, but recognisable).
KILLED_WORKER_EXIT = 26


class InjectedFault(RuntimeError):
    """The exception raised by ``raise`` (and serial ``kill``) faults."""


# repro-lint: disable=RPR008 -- deliberately process-local cache of one mkdtemp
# result; cross-process fault-injection state lives in the marker *files* under
# this directory (created O_CREAT|O_EXCL), not in the variable itself.
_PROCESS_STATE_DIR: str | None = None


def _default_state_dir() -> str:
    """One shared per-process marker directory for plans without their own.

    Cached so that every sweep of a single run shares injection state (a
    fault claimed in one sweep is not re-injected by the next); tests and CI
    pass an explicit ``state_dir`` for full control.
    """
    global _PROCESS_STATE_DIR
    if _PROCESS_STATE_DIR is None:
        _PROCESS_STATE_DIR = tempfile.mkdtemp(prefix="repro-faults-")
    return _PROCESS_STATE_DIR


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, bounded plan of which task ordinals fail, and how."""

    tasks: tuple[tuple[int, str], ...] = ()
    kind: str = "raise"
    seed: int | None = None
    rate: float = 0.0
    times: int = 1
    hang_seconds: float = 0.25
    state_dir: str = ""

    def __post_init__(self) -> None:
        for index, kind in self.tasks:
            if not isinstance(index, int) or isinstance(index, bool) or index < 0:
                raise ValueError(f"fault task ordinal must be a non-negative int, got {index!r}")
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}; valid: {FAULT_KINDS}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be within [0, 1], got {self.rate!r}")
        if self.rate > 0.0 and self.seed is None:
            raise ValueError("a fault 'rate' needs a 'seed' to stay deterministic")
        if self.times < 1:
            raise ValueError(f"fault times must be at least 1, got {self.times!r}")
        if self.hang_seconds <= 0.0:
            raise ValueError(f"hang_seconds must be positive, got {self.hang_seconds!r}")
        if not self.state_dir:
            object.__setattr__(self, "state_dir", _default_state_dir())

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the ``REPRO_FAULTS`` JSON payload."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"{FAULTS_ENV_VAR} is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ValueError(f"{FAULTS_ENV_VAR} must be a JSON object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - set(_PLAN_FIELDS))
        if unknown:
            raise ValueError(
                f"{FAULTS_ENV_VAR} has unknown field(s) {unknown}; valid: {list(_PLAN_FIELDS)}"
            )
        tasks = payload.pop("tasks", {})
        if not isinstance(tasks, dict):
            raise ValueError(f"{FAULTS_ENV_VAR} 'tasks' must map task ordinals to fault kinds")
        try:
            targets = tuple(sorted((int(index), kind) for index, kind in tasks.items()))
        except (TypeError, ValueError) as error:
            raise ValueError(f"{FAULTS_ENV_VAR} 'tasks' keys must be integers: {error}") from error
        return cls(tasks=targets, **payload)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan selected by ``REPRO_FAULTS``, or ``None`` when unset."""
        text = os.environ.get(FAULTS_ENV_VAR, "").strip()
        if not text:
            return None
        return cls.parse(text)

    def kind_for(self, index: int) -> str | None:
        """Fault kind targeting task ``index``, or ``None`` when unharmed."""
        for target, kind in self.tasks:
            if target == index:
                return kind
        if self.seed is not None and self.rate > 0.0:
            digest = hashlib.sha256(f"{self.seed}:{index}".encode()).digest()
            if int.from_bytes(digest[:8], "big") / 2.0**64 < self.rate:
                return self.kind
        return None

    def _claim(self, index: int) -> bool:
        """Atomically claim one of the ``times`` injection slots of a task.

        Marker files under ``state_dir`` are the cross-process injection
        ledger: a slot claimed by any worker (even one that died right
        after) stays claimed, so a retried task eventually runs clean.
        """
        directory = Path(self.state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for slot in range(self.times):
            try:
                fd = os.open(directory / f"task-{index}.{slot}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def apply(self, index: int, in_pool: bool = True) -> None:
        """Inject this plan's fault for task ``index``, if one is due.

        Called by the execution layer immediately before the task function
        runs — in the worker process under a pool, in the parent when
        serial.  ``kill`` outside a pool worker raises instead of exiting so
        degraded-to-serial execution survives its own fault plan.
        """
        kind = self.kind_for(index)
        if kind is None or not self._claim(index):
            return
        if kind == "hang":
            time.sleep(self.hang_seconds)
            return
        if kind == "kill" and in_pool:
            os._exit(KILLED_WORKER_EXIT)
        raise InjectedFault(
            f"injected {kind!r} fault at task {index}"
            + (" (serial execution: raising instead of killing)" if kind == "kill" else "")
        )
