"""Figure 6 — the kernel density interference model.

(a) Effect of the kernel bandwidth on a density estimated from a small sample
    set (over-smoothing vs gaps), reproducing the illustration the paper uses
    to motivate data-driven bandwidth selection.
(b) CDF of the amplitude deviations observed on the data symbols versus the
    CDF predicted by the preamble-trained kernel density model, for ACI at
    SIR -10/-20/-30 dB — showing that the model trained on the preamble
    transfers to the data symbols.

Each SIR value of panel (b) is an independent analysis task dispatched
through the shared sweep-execution layer, so ``--workers`` and the persistent
point cache apply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.api import ExperimentSpec, register_analysis, run_experiment_spec
from repro.core.config import CPRecycleConfig
from repro.core.interference_model import InterferenceModel
from repro.experiments.config import ExperimentProfile, aci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import execute_points
from repro.receiver.frontend import FrontEnd
from repro.utils.rng import child_rng

__all__ = [
    "SPEC",
    "build_spec",
    "run",
    "run_bandwidth_illustration",
    "run_deviation_cdf",
    "main",
]


def run_bandwidth_illustration(
    bandwidths: tuple[float, ...] = (1.0, 2.0, 3.0), n_grid: int = 41
) -> FigureResult:
    """Figure 6a: one sample set, three kernel bandwidths."""
    samples = np.array([-6.0, -4.5, -4.0, -1.0, 0.0, 0.5, 1.0, 2.0, 6.0, 7.0, 7.5, 11.0])
    grid = np.linspace(-10.0, 15.0, n_grid)
    series: dict[str, list[float]] = {}
    for bandwidth in bandwidths:
        density = norm.pdf((grid[:, None] - samples[None, :]) / bandwidth).mean(axis=1) / bandwidth
        series[f"Bandwidth={bandwidth:g}"] = list(density)
    return FigureResult(
        figure="Figure 6a",
        title="Kernel density estimation with varying bandwidth",
        x_label="Sample value",
        x_values=[round(float(value), 3) for value in grid],
        y_label="Estimated density",
        series=series,
        notes=[f"sample data: {samples.tolist()}"],
    )


@dataclass(frozen=True)
class _DeviationTask:
    """One SIR point of the deviation-CDF analysis (picklable sweep task)."""

    sir_db: float
    payload_length: int
    seed: int
    quantiles: tuple[float, ...]


def _deviation_point(task: _DeviationTask) -> dict[str, list[float]]:
    """Measured and model-predicted deviation amplitudes (dB) at the CDF levels.

    Module-level so it pickles into pool workers; all randomness derives from
    ``task.seed``.
    """
    config = CPRecycleConfig(model_scope="pooled", max_segments=16)
    scenario = aci_scenario(
        "qpsk-1/2", sir_db=task.sir_db, payload_length=task.payload_length, edge_window_length=0
    )
    rx = scenario.realize(child_rng(task.seed, 6, int(abs(task.sir_db))))
    front = FrontEnd(n_segments=16).process(rx)
    model = InterferenceModel.from_front_end(front, config)

    observations = front.data_observations()
    deviations = observations - rx.tx_frame.data_points[None, :, :]
    sample_amplitudes = np.abs(deviations).reshape(-1)

    # Model CDF of the amplitude marginal: mixture of Gaussian kernel CDFs.
    train_amplitudes = np.abs(model.deviations.reshape(model.n_subcarriers, -1))
    bandwidths = model.kde.bandwidth_amplitude.reshape(model.n_subcarriers, -1).mean(axis=1)
    grid = np.linspace(0.0, float(sample_amplitudes.max()) * 1.2 + 1e-6, 512)
    cdf = norm.cdf((grid[:, None, None] - train_amplitudes[None]) / bandwidths[None, :, None])
    model_cdf = cdf.mean(axis=(1, 2))

    measured = [float(np.quantile(sample_amplitudes, q)) for q in task.quantiles]
    predicted = [float(np.interp(q, model_cdf, grid)) for q in task.quantiles]
    return {
        "samples": [20.0 * float(np.log10(max(v, 1e-6))) for v in measured],
        "model": [20.0 * float(np.log10(max(v, 1e-6))) for v in predicted],
    }


def run_deviation_cdf(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    quantiles: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9),
    n_workers: int | None = None,
) -> FigureResult:
    """Figure 6b: data-symbol deviation amplitudes vs the preamble-trained model.

    For each SIR the experiment reports the amplitude (in dB) at a set of CDF
    levels, once measured on the data symbols (genie knowledge of the
    transmitted points) and once predicted by the kernel density model trained
    only on the preamble.
    """
    profile = profile or default_profile()
    tasks = [
        _DeviationTask(
            sir_db=sir_db,
            payload_length=profile.payload_length,
            seed=profile.seed,
            quantiles=quantiles,
        )
        for sir_db in sir_values_db
    ]
    outcomes = execute_points(_deviation_point, tasks, n_workers=n_workers)
    series: dict[str, list[float]] = {}
    for task, outcome in zip(tasks, outcomes):
        series[f"Samples SIR {task.sir_db:g} dB"] = list(outcome["samples"])
        series[f"Model SIR {task.sir_db:g} dB"] = list(outcome["model"])
    return FigureResult(
        figure="Figure 6b",
        title="Amplitude-deviation CDF: data-symbol samples vs preamble-trained KDE",
        x_label="CDF level",
        x_values=list(quantiles),
        y_label="Deviation amplitude (dB)",
        series=series,
    )


@register_analysis("fig6-deviation-cdf")
def _deviation_cdf_analysis(
    profile: ExperimentProfile,
    n_workers: int | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    quantiles: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> FigureResult:
    """Registered analysis runner behind the Figure 6 spec."""
    return run_deviation_cdf(
        profile,
        sir_values_db=tuple(sir_values_db),
        quantiles=tuple(quantiles),
        n_workers=n_workers,
    )


def build_spec() -> ExperimentSpec:
    """The canonical Figure 6 spec (the representative deviation CDF)."""
    return ExperimentSpec(
        name="fig6",
        figure="Figure 6b",
        title="Amplitude-deviation CDF: data-symbol samples vs preamble-trained KDE",
        kind="analysis",
        analysis="fig6-deviation-cdf",
        params={
            "sir_values_db": [-10.0, -20.0, -30.0],
            "quantiles": [0.1, 0.25, 0.5, 0.75, 0.9],
        },
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None, n_workers: int | None = None
) -> FigureResult:
    """Representative result for Figure 6 (the deviation CDF, Fig. 6b)."""
    return run_experiment_spec(SPEC, profile, n_workers=n_workers)


def main() -> None:
    """Print both panels of Figure 6."""
    from repro.experiments.results import format_table

    print(format_table(run_bandwidth_illustration(), float_format="{:8.4f}"))
    print()
    print(format_table(run_deviation_cdf()))


if __name__ == "__main__":
    main()
