"""Packet-level link simulation engine.

``packet_success_rate`` runs the same sequence of channel/interference
realisations through several receivers and reports each receiver's packet
success rate — the paper's primary metric.

Two execution engines are provided:

* ``"fast"`` (default) — the batched path: every packet of a sweep point is
  realised up front (:meth:`Scenario.realize_batch`), each receiver
  demodulates the whole batch through its ``demodulate_batch`` entry point
  (CPRecycle pools KDE training and the ML decision across packets and
  symbols), and the forward-error-correction stage runs as one vectorised
  Viterbi sweep per receiver.
* ``"reference"`` — the original per-packet loop, kept as the verification
  fallback.  Both engines consume identical per-packet child RNG streams and
  produce bit-identical decisions; ``tests/test_fast_path.py`` asserts it.

Select the engine per call or process-wide with the ``REPRO_ENGINE``
environment variable.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.channel.scenario import Scenario
from repro.receiver.base import OfdmReceiverBase
from repro.receiver.decode_chain import (
    decode_coded_bits_batch,
    decode_coded_bits_batch_reference,
)
from repro.utils.rng import child_rng

__all__ = [
    "PacketStats",
    "default_engine",
    "packet_success_rate",
    "symbol_error_rate",
]

_ENGINES = ("fast", "reference")

#: Packets realised and demodulated together by the fast engine.  Bounds the
#: engine's working set (waveforms, stacked FFT tensors, equalised spectra)
#: at paper-scale packet counts while keeping batches large enough for the
#: pooled KDE/ML decode to amortise; chunk boundaries do not change a single
#: sample because every packet derives from its own child RNG stream.
FAST_ENGINE_BATCH = 16


def default_engine() -> str:
    """Link engine selected by the ``REPRO_ENGINE`` environment variable."""
    choice = os.environ.get("REPRO_ENGINE", "fast").strip().lower()
    if choice == "":
        return "fast"
    if choice not in _ENGINES:
        raise ValueError(f"unknown REPRO_ENGINE {choice!r}; use 'fast' or 'reference'")
    return choice


def _resolve_engine(engine: str | None) -> str:
    if engine is None:
        return default_engine()
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use 'fast' or 'reference'")
    return engine


@dataclass(frozen=True)
class PacketStats:
    """Packet-decoding statistics of one receiver over one scenario point.

    ``successes`` records the per-packet CRC outcome in packet order; the
    benchmark harness compares it between engines so that compensating
    errors (one engine failing packet A, the other packet B) cannot hide
    behind equal aggregate counts.
    """

    receiver: str
    n_packets: int
    n_success: int
    successes: tuple[bool, ...] = ()

    @property
    def success_rate(self) -> float:
        """Fraction of packets whose CRC verified."""
        if self.n_packets == 0:
            raise ValueError("no packets were simulated")
        return self.n_success / self.n_packets

    @property
    def success_percent(self) -> float:
        """Packet success rate in percent (the paper's y-axis)."""
        return 100.0 * self.success_rate


def packet_success_rate(
    scenario: Scenario,
    receivers: Mapping[str, OfdmReceiverBase],
    n_packets: int,
    seed: int = 0,
    engine: str | None = None,
) -> dict[str, PacketStats]:
    """Packet success rate of each receiver over ``n_packets`` realisations.

    Every receiver decodes exactly the same received waveforms, so the
    comparison isolates the receiver algorithm from the channel draw.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be at least 1")
    if not receivers:
        raise ValueError("at least one receiver is required")
    engine = _resolve_engine(engine)
    spec = scenario.frame_spec
    coded: dict[str, list[np.ndarray]] = {name: [] for name in receivers}
    if engine == "fast":
        for start in range(0, n_packets, FAST_ENGINE_BATCH):
            count = min(FAST_ENGINE_BATCH, n_packets - start)
            rxs = scenario.realize_batch(count, seed, first_index=start)
            for name, receiver in receivers.items():
                coded[name].extend(d.coded_bits for d in receiver.demodulate_batch(rxs))
    else:
        for index in range(n_packets):
            rx = scenario.realize(child_rng(seed, index))
            for name, receiver in receivers.items():
                coded[name].append(receiver.demodulate(rx).coded_bits)

    decode_batch = (
        decode_coded_bits_batch if engine == "fast" else decode_coded_bits_batch_reference
    )
    stats: dict[str, PacketStats] = {}
    for name in receivers:
        frames = decode_batch(spec, np.stack(coded[name]))
        successes = tuple(bool(frame.crc_ok) for frame in frames)
        stats[name] = PacketStats(
            receiver=name,
            n_packets=n_packets,
            n_success=sum(successes),
            successes=successes,
        )
    return stats


def symbol_error_rate(
    scenario: Scenario,
    receivers: Mapping[str, OfdmReceiverBase],
    n_packets: int,
    seed: int = 0,
    engine: str | None = None,
) -> dict[str, float]:
    """Raw (pre-FEC) symbol error rate of each receiver — a diagnostic metric.

    With the fast engine each waveform is realised once and every receiver
    demodulates the same batch, so adding a receiver never re-draws the
    channel and the per-packet work is shared across the comparison.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be at least 1")
    engine = _resolve_engine(engine)
    errors = {name: 0 for name in receivers}
    total = 0
    if engine == "fast":
        for start in range(0, n_packets, FAST_ENGINE_BATCH):
            count = min(FAST_ENGINE_BATCH, n_packets - start)
            rxs = scenario.realize_batch(count, seed, first_index=start)
            true_indices = [
                rx.spec.mcs.constellation.nearest_indices(rx.tx_frame.data_points) for rx in rxs
            ]
            total += sum(indices.size for indices in true_indices)
            for name, receiver in receivers.items():
                for demodulated, truth in zip(receiver.demodulate_batch(rxs), true_indices):
                    errors[name] += int(np.count_nonzero(demodulated.decisions != truth))
    else:
        for index in range(n_packets):
            rx = scenario.realize(child_rng(seed, index))
            constellation = rx.spec.mcs.constellation
            true_indices = constellation.nearest_indices(rx.tx_frame.data_points)
            total += true_indices.size
            for name, receiver in receivers.items():
                decisions = receiver.demodulate(rx).decisions
                errors[name] += int(np.count_nonzero(decisions != true_indices))
    return {name: errors[name] / total for name in receivers}
