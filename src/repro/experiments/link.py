"""Packet-level link simulation engine.

``packet_success_rate`` runs the same sequence of channel/interference
realisations through several receivers and reports each receiver's packet
success rate — the paper's primary metric.  The per-packet front-end and
symbol decisions run per receiver, while the forward-error-correction stage
is batched across packets (one vectorised Viterbi sweep per receiver), which
dominates the runtime of large sweeps.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.channel.scenario import Scenario
from repro.receiver.base import OfdmReceiverBase
from repro.receiver.decode_chain import decode_coded_bits_batch
from repro.utils.rng import child_rng

__all__ = ["PacketStats", "packet_success_rate", "symbol_error_rate"]


@dataclass(frozen=True)
class PacketStats:
    """Packet-decoding statistics of one receiver over one scenario point."""

    receiver: str
    n_packets: int
    n_success: int

    @property
    def success_rate(self) -> float:
        """Fraction of packets whose CRC verified."""
        if self.n_packets == 0:
            raise ValueError("no packets were simulated")
        return self.n_success / self.n_packets

    @property
    def success_percent(self) -> float:
        """Packet success rate in percent (the paper's y-axis)."""
        return 100.0 * self.success_rate


def packet_success_rate(
    scenario: Scenario,
    receivers: Mapping[str, OfdmReceiverBase],
    n_packets: int,
    seed: int = 0,
) -> dict[str, PacketStats]:
    """Packet success rate of each receiver over ``n_packets`` realisations.

    Every receiver decodes exactly the same received waveforms, so the
    comparison isolates the receiver algorithm from the channel draw.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be at least 1")
    if not receivers:
        raise ValueError("at least one receiver is required")
    spec = scenario.frame_spec
    coded: dict[str, list[np.ndarray]] = {name: [] for name in receivers}
    for index in range(n_packets):
        rx = scenario.realize(child_rng(seed, index))
        for name, receiver in receivers.items():
            coded[name].append(receiver.demodulate(rx).coded_bits)

    stats: dict[str, PacketStats] = {}
    for name in receivers:
        frames = decode_coded_bits_batch(spec, np.stack(coded[name]))
        n_success = sum(frame.crc_ok for frame in frames)
        stats[name] = PacketStats(receiver=name, n_packets=n_packets, n_success=n_success)
    return stats


def symbol_error_rate(
    scenario: Scenario,
    receivers: Mapping[str, OfdmReceiverBase],
    n_packets: int,
    seed: int = 0,
) -> dict[str, float]:
    """Raw (pre-FEC) symbol error rate of each receiver — a diagnostic metric."""
    if n_packets < 1:
        raise ValueError("n_packets must be at least 1")
    errors = {name: 0 for name in receivers}
    total = 0
    for index in range(n_packets):
        rx = scenario.realize(child_rng(seed, index))
        constellation = rx.spec.mcs.constellation
        true_indices = constellation.nearest_indices(rx.tx_frame.data_points)
        total += true_indices.size
        for name, receiver in receivers.items():
            decisions = receiver.demodulate(rx).decisions
            errors[name] += int(np.count_nonzero(decisions != true_indices))
    return {name: errors[name] / total for name in receivers}
