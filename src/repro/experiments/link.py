"""Packet-level link simulation engine.

``packet_success_rate`` runs the same sequence of channel/interference
realisations through several receivers and reports each receiver's packet
success rate — the paper's primary metric.

Two execution engines are provided:

* ``"fast"`` (default) — the batched path: every packet of a sweep point is
  realised up front (:meth:`Scenario.realize_batch`), each receiver
  demodulates the whole batch through its ``demodulate_batch`` entry point
  (CPRecycle pools KDE training and the ML decision across packets and
  symbols), and the forward-error-correction stage runs as one vectorised
  Viterbi sweep per receiver.
* ``"reference"`` — the original per-packet loop, kept as the verification
  fallback.  Both engines consume identical per-packet child RNG streams and
  produce bit-identical decisions; ``tests/test_fast_path.py`` asserts it.

Select the engine per call or process-wide with the ``REPRO_ENGINE``
environment variable.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.channel.scenario import Scenario
from repro.receiver.base import OfdmReceiverBase
from repro.receiver.decode_chain import (
    decode_coded_bits_batch,
    decode_coded_bits_batch_reference,
)
from repro.utils.rng import child_rng

__all__ = [
    "LinkResult",
    "PacketStats",
    "default_engine",
    "packet_success_rate",
    "psr",
    "symbol_error_rate",
]

_ENGINES = ("fast", "reference")

#: Packets realised and demodulated together by the fast engine.  Bounds the
#: engine's working set (waveforms, stacked FFT tensors, equalised spectra)
#: at paper-scale packet counts while keeping batches large enough for the
#: pooled KDE/ML decode to amortise; chunk boundaries do not change a single
#: sample because every packet derives from its own child RNG stream.
FAST_ENGINE_BATCH = 16


def default_engine() -> str:
    """Link engine selected by the ``REPRO_ENGINE`` environment variable."""
    choice = os.environ.get("REPRO_ENGINE", "fast").strip().lower()
    if choice == "":
        return "fast"
    if choice not in _ENGINES:
        raise ValueError(f"unknown REPRO_ENGINE {choice!r}; use 'fast' or 'reference'")
    return choice


def _resolve_engine(engine: str | None) -> str:
    if engine is None:
        return default_engine()
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use 'fast' or 'reference'")
    return engine


def psr(n_success: int, n_packets: int) -> float:
    """Packet success rate as a fraction, validating the counts.

    A zero packet count has no defined rate and raises (an all-fail run is
    ``0.0``, an all-success run is ``1.0`` — both valid); impossible count
    pairs (negative, or more successes than packets) raise as well instead
    of producing a silently out-of-range rate.
    """
    if n_packets == 0:
        raise ValueError("no packets were simulated")
    if n_packets < 0:
        raise ValueError(f"n_packets must be >= 0, got {n_packets}")
    if not 0 <= n_success <= n_packets:
        raise ValueError(
            f"n_success must be between 0 and n_packets={n_packets}, got {n_success}"
        )
    return n_success / n_packets


@dataclass(frozen=True)
class LinkResult:
    """Packet-decoding statistics of one receiver over one scenario point.

    ``successes`` records the per-packet CRC outcome in packet order; the
    benchmark harness compares it between engines so that compensating
    errors (one engine failing packet A, the other packet B) cannot hide
    behind equal aggregate counts.

    ``first_packet`` is the global index of the first simulated packet —
    packet ``i`` of this result derives every random draw from the child RNG
    stream of global packet ``first_packet + i``, so two results covering
    adjacent index ranges :meth:`merge` losslessly into exactly the result
    one long run over the union would have produced.  The adaptive campaign
    scheduler (:mod:`repro.campaigns`) relies on this to grow a point's
    packet budget in rounds without ever re-simulating a packet.
    """

    receiver: str
    n_packets: int
    n_success: int
    successes: tuple[bool, ...] = ()
    first_packet: int = 0

    def __post_init__(self) -> None:
        if self.n_packets < 0:
            raise ValueError(f"n_packets must be >= 0, got {self.n_packets}")
        if not 0 <= self.n_success <= self.n_packets:
            raise ValueError(
                f"n_success must be between 0 and n_packets={self.n_packets}, "
                f"got {self.n_success}"
            )
        if self.successes and (
            len(self.successes) != self.n_packets
            or sum(self.successes) != self.n_success
        ):
            raise ValueError(
                f"per-packet successes ({len(self.successes)} entries, "
                f"{sum(self.successes)} true) disagree with the counts "
                f"({self.n_success}/{self.n_packets})"
            )

    @property
    def success_rate(self) -> float:
        """Fraction of packets whose CRC verified."""
        return psr(self.n_success, self.n_packets)

    @property
    def success_percent(self) -> float:
        """Packet success rate in percent (the paper's y-axis)."""
        return 100.0 * self.success_rate

    def merge(self, other: "LinkResult") -> "LinkResult":
        """Combine two results over adjacent packet ranges losslessly.

        The ranges must be contiguous (no gap, no overlap) so that the merge
        is exactly the result of one long run over the union — the counts
        sum, and the per-packet outcomes concatenate in global packet order.
        When either side carries only counts (empty ``successes``), the
        merged result is counts-only.
        """
        if self.receiver != other.receiver:
            raise ValueError(
                f"cannot merge results of different receivers "
                f"({self.receiver!r} vs {other.receiver!r})"
            )
        first, second = sorted((self, other), key=lambda result: result.first_packet)
        if first.first_packet + first.n_packets != second.first_packet:
            raise ValueError(
                f"link results cover non-contiguous packet ranges "
                f"[{first.first_packet}, {first.first_packet + first.n_packets}) and "
                f"[{second.first_packet}, {second.first_packet + second.n_packets})"
            )
        successes: tuple[bool, ...] = ()
        if (first.successes or not first.n_packets) and (
            second.successes or not second.n_packets
        ):
            successes = first.successes + second.successes
        return LinkResult(
            receiver=self.receiver,
            n_packets=first.n_packets + second.n_packets,
            n_success=first.n_success + second.n_success,
            successes=successes,
            first_packet=first.first_packet,
        )

    def __add__(self, other: "LinkResult") -> "LinkResult":
        return self.merge(other)


#: Backwards-compatible alias: the result type predates round-merging.
PacketStats = LinkResult


def packet_success_rate(
    scenario: Scenario,
    receivers: Mapping[str, OfdmReceiverBase],
    n_packets: int,
    seed: int = 0,
    engine: str | None = None,
    first_packet: int = 0,
) -> dict[str, LinkResult]:
    """Packet success rate of each receiver over ``n_packets`` realisations.

    Every receiver decodes exactly the same received waveforms, so the
    comparison isolates the receiver algorithm from the channel draw.

    Packet ``i`` derives all randomness from the child RNG stream of global
    packet index ``first_packet + i``, so splitting a long run into
    consecutive ``first_packet`` windows and merging the
    :class:`LinkResult`s reproduces the long run bit for bit — the counts
    depend only on which packet indices were simulated, never on how they
    were chunked into calls.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be at least 1")
    if first_packet < 0:
        raise ValueError(f"first_packet must be >= 0, got {first_packet}")
    if not receivers:
        raise ValueError("at least one receiver is required")
    engine = _resolve_engine(engine)
    spec = scenario.frame_spec
    coded: dict[str, list[np.ndarray]] = {name: [] for name in receivers}
    if engine == "fast":
        for start in range(0, n_packets, FAST_ENGINE_BATCH):
            count = min(FAST_ENGINE_BATCH, n_packets - start)
            with obs.span("engine.realize", n_packets=count):
                rxs = scenario.realize_batch(count, seed, first_index=first_packet + start)
            for name, receiver in receivers.items():
                with obs.span("engine.demodulate", receiver=name, n_packets=count):
                    coded[name].extend(d.coded_bits for d in receiver.demodulate_batch(rxs))
    else:
        # One coarse span for the whole per-packet loop: the reference
        # engine exists for bit-exact verification, not profiling, and
        # per-packet spans would dominate the trace.
        with obs.span("engine.reference", n_packets=n_packets):
            for index in range(n_packets):
                rx = scenario.realize(child_rng(seed, first_packet + index))
                for name, receiver in receivers.items():
                    coded[name].append(receiver.demodulate(rx).coded_bits)

    decode_batch = (
        decode_coded_bits_batch if engine == "fast" else decode_coded_bits_batch_reference
    )
    stats: dict[str, LinkResult] = {}
    for name in receivers:
        with obs.span("engine.fec", receiver=name, n_packets=n_packets):
            frames = decode_batch(spec, np.stack(coded[name]))
        successes = tuple(bool(frame.crc_ok) for frame in frames)
        stats[name] = LinkResult(
            receiver=name,
            n_packets=n_packets,
            n_success=sum(successes),
            successes=successes,
            first_packet=first_packet,
        )
    return stats


def symbol_error_rate(
    scenario: Scenario,
    receivers: Mapping[str, OfdmReceiverBase],
    n_packets: int,
    seed: int = 0,
    engine: str | None = None,
) -> dict[str, float]:
    """Raw (pre-FEC) symbol error rate of each receiver — a diagnostic metric.

    With the fast engine each waveform is realised once and every receiver
    demodulates the same batch, so adding a receiver never re-draws the
    channel and the per-packet work is shared across the comparison.
    """
    if n_packets < 1:
        raise ValueError("n_packets must be at least 1")
    engine = _resolve_engine(engine)
    errors = {name: 0 for name in receivers}
    total = 0
    if engine == "fast":
        for start in range(0, n_packets, FAST_ENGINE_BATCH):
            count = min(FAST_ENGINE_BATCH, n_packets - start)
            rxs = scenario.realize_batch(count, seed, first_index=start)
            true_indices = [
                rx.spec.mcs.constellation.nearest_indices(rx.tx_frame.data_points) for rx in rxs
            ]
            total += sum(indices.size for indices in true_indices)
            for name, receiver in receivers.items():
                for demodulated, truth in zip(receiver.demodulate_batch(rxs), true_indices):
                    errors[name] += int(np.count_nonzero(demodulated.decisions != truth))
    else:
        for index in range(n_packets):
            rx = scenario.realize(child_rng(seed, index))
            constellation = rx.spec.mcs.constellation
            true_indices = constellation.nearest_indices(rx.tx_frame.data_points)
            total += true_indices.size
            for name, receiver in receivers.items():
                decisions = receiver.demodulate(rx).decisions
                errors[name] += int(np.count_nonzero(decisions != true_indices))
    return {name: errors[name] / total for name in receivers}
