"""Figure 9 — packet success rate vs SIR with two adjacent-channel interferers.

The sender is flanked by interferers on both sides (the dense-WLAN overlap
scenario); twice as many subcarriers are affected, yet CPRecycle's
per-subcarrier interference model keeps most of its gain.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET, aci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import psr_vs_sir, sir_axis

__all__ = ["run", "main"]


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-32.0, -8.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with interferers on both adjacent blocks."""
    profile = profile or default_profile()
    sir_values = sir_axis(sir_range_db[0], sir_range_db[1], profile.n_sir_points)
    return psr_vs_sir(
        figure="Figure 9",
        title="PSR vs SIR, two adjacent-channel interferers",
        scenario_factory=partial(
            aci_scenario, payload_length=profile.payload_length, two_sided=True
        ),
        mcs_names=mcs_names,
        sir_values_db=sir_values,
        profile=profile,
        notes=["interferers on both sides of the sender; SIR counts their combined power"],
        n_workers=n_workers,
    )


def main() -> None:
    """Print Figure 9."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
