"""Figure 9 — packet success rate vs SIR with two adjacent-channel interferers.

The sender is flanked by interferers on both sides (the dense-WLAN overlap
scenario); twice as many subcarriers are affected, yet CPRecycle's
per-subcarrier interference model keeps most of its gain.  Both interferers
share the scenario's total SIR (the spec layer splits the power 3 dB each),
exactly as the paper counts combined interference power.

The figure is one declarative :class:`~repro.api.ExperimentSpec` (``SPEC``)
run through the :func:`~repro.api.run_experiment_spec` facade.
"""

from __future__ import annotations

from repro.api import (
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_experiment_spec,
)
from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET
from repro.experiments.results import FigureResult

__all__ = ["SPEC", "build_spec", "run", "main"]


def build_spec(
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-32.0, -8.0),
) -> ExperimentSpec:
    """The canonical Figure 9 spec (optionally with a custom MCS/SIR grid)."""
    return ExperimentSpec(
        name="fig9",
        figure="Figure 9",
        title="PSR vs SIR, two adjacent-channel interferers",
        scenario=ScenarioSpec(
            interferers=(
                InterfererSpec(kind="aci", side="upper"),
                InterfererSpec(kind="aci", side="lower"),
            )
        ),
        receivers=(ReceiverSpec("standard"), ReceiverSpec("cprecycle")),
        sweep=SweepSpec(
            axes=(
                SweepAxis("mcs_name", values=tuple(mcs_names)),
                SweepAxis("sir_db", span=sir_range_db),
            )
        ),
        series_label="{mcs} {receiver}",
        notes=("interferers on both sides of the sender; SIR counts their combined power",),
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-32.0, -8.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with interferers on both adjacent blocks."""
    return run_experiment_spec(build_spec(mcs_names, sir_range_db), profile, n_workers=n_workers)


def main() -> None:
    """Print Figure 9."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
