"""Table 1 — cyclic prefix provisioning across 802.11 standards.

The table is static standards data; the accompanying analysis quantifies the
over-provisioning argument of section 2.2: how many cyclic prefix samples are
left untouched by a typical indoor delay spread, i.e. how many FFT segments
CPRecycle has to work with on each channel width.
"""

from __future__ import annotations

from repro.experiments.results import FigureResult
from repro.standards.dot11 import DOT11_CP_TABLE, isi_free_samples, table1_rows

__all__ = ["run", "run_isi_free_analysis", "main"]


def run() -> list[dict[str, object]]:
    """Rows of Table 1, identical in layout to the paper."""
    return table1_rows()


def run_isi_free_analysis(delay_spread_us: float = 0.1) -> FigureResult:
    """ISI-free cyclic prefix samples per standard for a given delay spread.

    Reproduces the observation that the number of usable FFT segments grows
    with channel width because the delay spread does not.
    """
    labels = [f"{spec.standard} {spec.bandwidth_mhz:g}MHz" for spec in DOT11_CP_TABLE]
    free = [float(isi_free_samples(spec, delay_spread_us)) for spec in DOT11_CP_TABLE]
    total = [float(spec.cp_size) for spec in DOT11_CP_TABLE]
    return FigureResult(
        figure="Table 1 (analysis)",
        title=f"ISI-free cyclic prefix samples for a {delay_spread_us:g} us delay spread",
        x_label="Standard / bandwidth",
        x_values=labels,
        y_label="Cyclic prefix samples",
        series={"CP samples": total, "ISI-free samples (P)": free},
    )


def main() -> None:
    """Print Table 1 and the over-provisioning analysis."""
    rows = run()
    headers = list(rows[0].keys())
    widths = [max(len(h), *(len(str(row[h])) for row in rows)) for h in headers]
    print("Table 1: Cyclic Prefix in 802.11 standards")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(row[h]).ljust(w) for h, w in zip(headers, widths)))
    print()
    from repro.experiments.results import format_table

    print(format_table(run_isi_free_analysis()))


if __name__ == "__main__":
    main()
