"""Table 1 — cyclic prefix provisioning across 802.11 standards.

The table is static standards data; the accompanying analysis quantifies the
over-provisioning argument of section 2.2: how many cyclic prefix samples are
left untouched by a typical indoor delay spread, i.e. how many FFT segments
CPRecycle has to work with on each channel width.  Each standard's row is one
(trivially cheap) task on the shared sweep-execution layer, so the analysis
honours the same ``--workers`` and caching knobs as every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import ExperimentSpec, register_analysis
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import execute_points
from repro.standards.dot11 import DOT11_CP_TABLE, CyclicPrefixSpec, isi_free_samples, table1_rows

__all__ = ["SPEC", "build_spec", "run", "run_isi_free_analysis", "main"]


@dataclass(frozen=True)
class _SpecTask:
    """ISI-free analysis of one standard/bandwidth row (picklable sweep task)."""

    spec: CyclicPrefixSpec
    delay_spread_us: float


def _isi_free_point(task: _SpecTask) -> dict[str, float]:
    spec = task.spec
    return {
        "total": float(spec.cp_size),
        "free": float(isi_free_samples(spec, task.delay_spread_us)),
    }


def run() -> list[dict[str, object]]:
    """Rows of Table 1, identical in layout to the paper."""
    return table1_rows()


@register_analysis("table1-isi-free")
def _isi_free_analysis(profile, n_workers: int | None = None, delay_spread_us: float = 0.1):
    """Registered analysis runner behind the Table 1 spec (profile unused:
    the table is static standards data)."""
    return run_isi_free_analysis(delay_spread_us=delay_spread_us, n_workers=n_workers)


def build_spec() -> ExperimentSpec:
    """The canonical Table 1 spec (the ISI-free over-provisioning analysis)."""
    return ExperimentSpec(
        name="table1",
        figure="Table 1 (analysis)",
        title="ISI-free cyclic prefix samples across 802.11 standards",
        kind="analysis",
        analysis="table1-isi-free",
        params={"delay_spread_us": 0.1},
    )


SPEC = build_spec()


def run_isi_free_analysis(
    delay_spread_us: float = 0.1, n_workers: int | None = None
) -> FigureResult:
    """ISI-free cyclic prefix samples per standard for a given delay spread.

    Reproduces the observation that the number of usable FFT segments grows
    with channel width because the delay spread does not.
    """
    tasks = [_SpecTask(spec=spec, delay_spread_us=delay_spread_us) for spec in DOT11_CP_TABLE]
    outcomes = execute_points(_isi_free_point, tasks, n_workers=n_workers)
    labels = [f"{spec.standard} {spec.bandwidth_mhz:g}MHz" for spec in DOT11_CP_TABLE]
    return FigureResult(
        figure="Table 1 (analysis)",
        title=f"ISI-free cyclic prefix samples for a {delay_spread_us:g} us delay spread",
        x_label="Standard / bandwidth",
        x_values=labels,
        y_label="Cyclic prefix samples",
        series={
            "CP samples": [outcome["total"] for outcome in outcomes],
            "ISI-free samples (P)": [outcome["free"] for outcome in outcomes],
        },
    )


def main() -> None:
    """Print Table 1 and the over-provisioning analysis."""
    rows = run()
    headers = list(rows[0].keys())
    widths = [max(len(h), *(len(str(row[h])) for row in rows)) for h in headers]
    print("Table 1: Cyclic Prefix in 802.11 standards")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(row[h]).ljust(w) for h, w in zip(headers, widths)))
    print()
    from repro.experiments.results import format_table

    print(format_table(run_isi_free_analysis()))


if __name__ == "__main__":
    main()
