"""Shared sweep helpers for the packet-success-rate figures."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.channel.scenario import Scenario
from repro.experiments.config import ExperimentProfile, build_receivers
from repro.experiments.link import packet_success_rate
from repro.experiments.results import FigureResult

__all__ = ["psr_vs_sir", "sir_axis"]


def sir_axis(low_db: float, high_db: float, n_points: int) -> list[float]:
    """Evenly spaced SIR values from low to high (inclusive)."""
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    return [round(float(value), 2) for value in np.linspace(low_db, high_db, n_points)]


def psr_vs_sir(
    figure: str,
    title: str,
    scenario_factory: Callable[[str, float], Scenario],
    mcs_names: tuple[str, ...],
    sir_values_db: list[float],
    profile: ExperimentProfile,
    receiver_names: tuple[str, ...] = ("standard", "cprecycle"),
    notes: list[str] | None = None,
) -> FigureResult:
    """Packet success rate versus SIR for several MCS modes and receivers.

    ``scenario_factory(mcs_name, sir_db)`` builds the scenario of one sweep
    point; each (MCS, receiver) pair becomes one series of the figure, named
    the way the paper labels its curves ("QPSK (1/2) With CPRecycle", ...).
    """
    series: dict[str, list[float]] = {}
    for mcs_name in mcs_names:
        for sir_db in sir_values_db:
            scenario = scenario_factory(mcs_name, sir_db)
            receivers = build_receivers(scenario.allocation, receiver_names)
            stats = packet_success_rate(
                scenario, receivers, profile.n_packets, seed=profile.seed
            )
            for receiver_name in receiver_names:
                label = _series_label(mcs_name, receiver_name)
                series.setdefault(label, []).append(stats[receiver_name].success_percent)
    return FigureResult(
        figure=figure,
        title=title,
        x_label="Signal to Interference ratio (dB)",
        x_values=list(sir_values_db),
        series=series,
        notes=notes or [],
    )


def _series_label(mcs_name: str, receiver_name: str) -> str:
    modulation, rate = mcs_name.split("-")
    pretty_mcs = f"{modulation.upper()} ({rate})"
    pretty_receiver = {
        "standard": "Without CPRecycle",
        "cprecycle": "With CPRecycle",
        "oracle": "Oracle",
        "naive": "Naive decoder",
    }.get(receiver_name, receiver_name)
    return f"{pretty_mcs} {pretty_receiver}"
