"""Shared sweep-execution layer for the experiment harness.

Every experiment decomposes into independently-executable *sweep points*:
(MCS, SIR) pairs for the packet-success-rate figures, (SIR, guard-band) and
(SIR, segment-count) grid cells for Figs. 10/14, per-SIR analysis tasks for
Figs. 4/6, Monte-Carlo building realizations for Fig. 13 and per-standard
rows for Table 1.  :func:`execute_points` is the single execution funnel all
of them go through:

* points dispatch via :func:`repro.experiments.parallel.parallel_map` —
  serial by default, across a process pool when ``n_workers`` (or
  ``REPRO_WORKERS``) is greater than one;
* when the ``REPRO_RESULT_CACHE`` environment variable names a directory,
  completed point outcomes are persisted there (keyed by a stable content
  hash of the task, see :mod:`repro.experiments.store`) so a re-run with the
  same configuration skips finished points and an interrupted run resumes.

Task objects must be picklable for the pool to engage (frozen dataclasses of
primitives and :func:`functools.partial` objects over module-level functions,
as the figure modules provide) and task functions must return
JSON-serialisable outcomes so a cached outcome is bit-identical to a fresh
one.  All randomness must derive from seeds carried inside the task, making
every outcome independent of which worker (or run) executes it.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.channel.scenario import Scenario
from repro.experiments.config import ExperimentProfile, build_receivers
from repro.experiments.link import default_engine, packet_success_rate
from repro.experiments.parallel import parallel_map, parallel_map_chunked
from repro.experiments.results import FigureResult
from repro.experiments.store import CACHE_ENV_VAR, PointCache, stable_key

__all__ = ["execute_points", "psr_vs_sir", "sir_axis", "SweepPoint", "run_sweep_point"]


def sir_axis(low_db: float, high_db: float, n_points: int) -> list[float]:
    """Evenly spaced SIR values from low to high (inclusive)."""
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    return [round(float(value), 2) for value in np.linspace(low_db, high_db, n_points)]


# --------------------------------------------------------------------------- #
# Generic point execution (pool + persistent point cache)                     #
# --------------------------------------------------------------------------- #
def _point_cache_for(fn: Callable) -> PointCache | None:
    """Point cache for ``fn``'s sweep, or ``None`` when caching is off."""
    cache_dir = os.environ.get(CACHE_ENV_VAR, "").strip()
    if not cache_dir:
        return None
    label = f"{getattr(fn, '__module__', 'task')}.{getattr(fn, '__qualname__', 'fn')}"
    return PointCache(Path(cache_dir) / (label.replace(".", "-") + ".json"))


_NO_ENGINE = object()


def _point_key(task) -> str:
    """Content hash identifying one sweep point across runs.

    A task whose ``engine`` field is ``None`` inherits ``REPRO_ENGINE`` at
    execution time, so the resolved default engine is part of that point's
    identity; tasks with an explicit engine — or none at all (analysis and
    Monte-Carlo tasks that never touch the link engine) — hash on their
    content alone and survive an environment-engine change.
    """
    if getattr(task, "engine", _NO_ENGINE) is None:
        return stable_key((default_engine(), task))
    return stable_key(task)


def execute_points(fn, tasks, n_workers: int | None = None) -> list:
    """Run every sweep task through the shared execution layer.

    Outcomes preserve task order whatever the execution order was.  With a
    cache directory configured (``REPRO_RESULT_CACHE``), previously completed
    points are returned from the cache and newly computed ones are flushed to
    it chunk-by-chunk (reusing one process pool across chunks), so
    interrupting an expensive sweep loses at most one chunk of work.
    """
    tasks = list(tasks)
    cache = _point_cache_for(fn)
    if cache is None:
        return parallel_map(fn, tasks, n_workers=n_workers)

    keys = [_point_key(task) for task in tasks]
    outcomes: dict[int, object] = {
        index: cache.get(key) for index, key in enumerate(keys) if key in cache
    }
    pending = [index for index in range(len(tasks)) if index not in outcomes]

    def flush(start: int, chunk_results: list) -> None:
        chunk = pending[start : start + len(chunk_results)]
        cache.update({keys[i]: outcome for i, outcome in zip(chunk, chunk_results)})
        outcomes.update(dict(zip(chunk, chunk_results)))

    parallel_map_chunked(
        fn, [tasks[i] for i in pending], n_workers=n_workers, on_chunk=flush
    )
    return [outcomes[index] for index in range(len(tasks))]


# --------------------------------------------------------------------------- #
# Packet-success-rate sweeps                                                  #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepPoint:
    """One independently-executable packet-success-rate sweep point.

    ``scenario_factory(mcs_name, sir_db)`` builds the point's scenario; the
    grid dimension beyond (MCS, SIR) — guard band, segment count, interferer
    count — is folded into the factory via :func:`functools.partial`, keeping
    the point picklable for the process pool.
    """

    scenario_factory: Callable[[str, float], Scenario]
    mcs_name: str
    sir_db: float
    receiver_names: tuple[str, ...]
    n_packets: int
    seed: int
    engine: str | None = field(default=None)
    n_segments: int | None = field(default=None)


def run_sweep_point(point: SweepPoint) -> dict[str, float]:
    """Simulate one sweep point and return success percentages per receiver.

    Module-level so that it pickles into pool workers; all randomness derives
    from ``point.seed``, making the result independent of which worker (or
    order) executes it.
    """
    scenario = point.scenario_factory(point.mcs_name, point.sir_db)
    receivers = build_receivers(
        scenario.allocation, point.receiver_names, n_segments=point.n_segments
    )
    stats = packet_success_rate(
        scenario, receivers, point.n_packets, seed=point.seed, engine=point.engine
    )
    return {name: stats[name].success_percent for name in point.receiver_names}


def psr_vs_sir(
    figure: str,
    title: str,
    scenario_factory: Callable[[str, float], Scenario],
    mcs_names: tuple[str, ...],
    sir_values_db: list[float],
    profile: ExperimentProfile,
    receiver_names: tuple[str, ...] = ("standard", "cprecycle"),
    notes: list[str] | None = None,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """Packet success rate versus SIR for several MCS modes and receivers.

    ``scenario_factory(mcs_name, sir_db)`` builds the scenario of one sweep
    point; each (MCS, receiver) pair becomes one series of the figure, named
    the way the paper labels its curves ("QPSK (1/2) With CPRecycle", ...).
    Points run through :func:`execute_points`; results are assembled in
    deterministic point order whatever the execution order was.  ``engine``
    picks the link engine per point (``None``: the ``REPRO_ENGINE`` default).
    """
    points = [
        SweepPoint(
            scenario_factory=scenario_factory,
            mcs_name=mcs_name,
            sir_db=sir_db,
            receiver_names=receiver_names,
            n_packets=profile.n_packets,
            seed=profile.seed,
            engine=engine,
        )
        for mcs_name in mcs_names
        for sir_db in sir_values_db
    ]
    outcomes = execute_points(run_sweep_point, points, n_workers=n_workers)

    series: dict[str, list[float]] = {}
    for point, outcome in zip(points, outcomes):
        for receiver_name in receiver_names:
            label = _series_label(point.mcs_name, receiver_name)
            series.setdefault(label, []).append(outcome[receiver_name])
    return FigureResult(
        figure=figure,
        title=title,
        x_label="Signal to Interference ratio (dB)",
        x_values=list(sir_values_db),
        series=series,
        notes=notes or [],
    )


def _series_label(mcs_name: str, receiver_name: str) -> str:
    modulation, rate = mcs_name.split("-")
    pretty_mcs = f"{modulation.upper()} ({rate})"
    pretty_receiver = {
        "standard": "Without CPRecycle",
        "cprecycle": "With CPRecycle",
        "oracle": "Oracle",
        "naive": "Naive decoder",
    }.get(receiver_name, receiver_name)
    return f"{pretty_mcs} {pretty_receiver}"
