"""Shared sweep-execution layer for the experiment harness.

Every experiment decomposes into independently-executable *sweep points*:
packet-success-rate grid cells for the PSR figures, per-SIR analysis tasks
for Figs. 4/6, Monte-Carlo building realizations (and, in simulated mode,
per-AP-pair link scenarios — see :mod:`repro.network.links`) for Fig. 13
and per-standard rows for Table 1.  :func:`execute_points` is the single
execution funnel all of them go through:

* points dispatch via :func:`repro.experiments.parallel.parallel_map` —
  serial by default, across a process pool when ``n_workers`` (or
  ``REPRO_WORKERS``) is greater than one;
* when the ``REPRO_RESULT_CACHE`` environment variable names a directory,
  completed point outcomes are persisted there (keyed by a stable content
  hash of the task, see :mod:`repro.experiments.store`) so a re-run with the
  same configuration skips finished points and an interrupted run resumes.

A packet-success-rate point is a :class:`SweepPoint`: a declarative
:class:`repro.api.specs.ScenarioSpec` plus the receiver set as
:class:`repro.api.specs.ReceiverSpec` entries.  Specs are frozen
dataclasses of primitives, so points are picklable by construction (no
``functools.partial`` gymnastics) and hash stably across processes for the
point cache.  Task functions must return JSON-serialisable outcomes so a
cached outcome is bit-identical to a fresh one, and all randomness must
derive from seeds carried inside the task, making every outcome independent
of which worker (or run) executes it.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import obs
from repro.experiments.link import default_engine, packet_success_rate
from repro.experiments.parallel import FailurePolicy, parallel_map_chunked
from repro.experiments.store import CACHE_ENV_VAR, PointCache, stable_key
from repro.obs.progress import PROGRESS_ENV_VAR, ProgressReporter, progress_enabled

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.api.specs import ReceiverSpec, ScenarioSpec

__all__ = [
    "execute_points",
    "progress_enabled",
    "sir_axis",
    "SweepPoint",
    "run_sweep_point",
    "run_sweep_point_counts",
    "PROGRESS_ENV_VAR",
]

#: Progress reporting moved into the observability layer so ``--progress``
#: and ``--trace`` compose; ``PROGRESS_ENV_VAR``/``progress_enabled`` stay
#: importable from here for existing callers (see :mod:`repro.obs.progress`).


def sir_axis(low_db: float, high_db: float, n_points: int) -> list[float]:
    """Evenly spaced SIR values from low to high (inclusive)."""
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    return [round(float(value), 2) for value in np.linspace(low_db, high_db, n_points)]


# --------------------------------------------------------------------------- #
# Generic point execution (pool + persistent point cache)                     #
# --------------------------------------------------------------------------- #
def _point_cache_for(fn: Callable[..., Any]) -> PointCache | None:
    """Point cache for ``fn``'s sweep, or ``None`` when caching is off."""
    cache_dir = os.environ.get(CACHE_ENV_VAR, "").strip()
    if not cache_dir:
        return None
    label = f"{getattr(fn, '__module__', 'task')}.{getattr(fn, '__qualname__', 'fn')}"
    return PointCache(Path(cache_dir) / (label.replace(".", "-") + ".json"))


_NO_ENGINE = object()


def _point_key(task: Any) -> str:
    """Content hash identifying one sweep point across runs.

    A task whose ``engine`` field is ``None`` inherits ``REPRO_ENGINE`` at
    execution time, so the resolved default engine is part of that point's
    identity; tasks with an explicit engine — or none at all (analysis and
    Monte-Carlo tasks that never touch the link engine) — hash on their
    content alone and survive an environment-engine change.
    """
    if getattr(task, "engine", _NO_ENGINE) is None:
        return stable_key((default_engine(), task))
    return stable_key(task)


def execute_points(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    n_workers: int | None = None,
    policy: FailurePolicy | None = None,
) -> list[Any]:
    """Run every sweep task through the shared execution layer.

    Outcomes preserve task order whatever the execution order was.  With a
    cache directory configured (``REPRO_RESULT_CACHE``), previously completed
    points are returned from the cache and newly computed ones are flushed to
    it chunk-by-chunk (reusing one process pool across chunks), so
    interrupting an expensive sweep loses at most one chunk of work.  With
    ``REPRO_PROGRESS`` set, each completed chunk prints one stderr line
    (points done/total, elapsed seconds); cached points count as done
    immediately.

    ``policy`` tunes the supervised executor's failure handling
    (retry/timeout/degradation — see
    :class:`repro.experiments.parallel.FailurePolicy`); by default it is
    resolved from the ``REPRO_MAX_RETRIES``/``REPRO_TASK_TIMEOUT``/...
    environment variables.  Because every task derives its randomness from
    seeds it carries, any retried or re-dispatched point returns an outcome
    bit-identical to an undisturbed run's.

    Under ``REPRO_TRACE`` the whole call is one traced section — cache
    lookup, pool dispatch and result merge each get a span, and the
    supervised executor adds per-task serialize/submit/compute events (see
    :mod:`repro.obs`).  Tracing never changes an outcome: spans only time
    existing statements.
    """
    tasks = list(tasks)
    label = getattr(fn, "__qualname__", getattr(fn, "__name__", "task"))
    with obs.tracing("sweep.execute_points", label=label, n_tasks=len(tasks)):
        return _execute(fn, tasks, n_workers, policy)


def _execute(
    fn: Callable[[Any], Any],
    tasks: list[Any],
    n_workers: int | None,
    policy: FailurePolicy | None,
) -> list[Any]:
    cache = _point_cache_for(fn)
    reporter = (
        ProgressReporter(fn, total=len(tasks), cached=0)
        if cache is None and progress_enabled() and tasks
        else None
    )
    if cache is None:
        def report(start: int, chunk_results: list[Any]) -> None:
            if reporter is not None:
                reporter.emit(len(chunk_results))

        # One chunk when nobody is watching (single flush, least overhead);
        # pool-sized chunks when progress is on so lines arrive steadily.
        chunk_size = None if reporter is not None else max(len(tasks), 1)
        return parallel_map_chunked(
            fn,
            tasks,
            n_workers=n_workers,
            chunk_size=chunk_size,
            on_chunk=report,
            policy=policy,
        )

    with obs.span("sweep.cache_lookup", n_tasks=len(tasks)):
        keys = [_point_key(task) for task in tasks]
        outcomes: dict[int, Any] = {
            index: cache.get(key) for index, key in enumerate(keys) if key in cache
        }
        pending = [index for index in range(len(tasks)) if index not in outcomes]
        obs.add(cache_hits=len(outcomes), cache_misses=len(pending))
    if progress_enabled() and tasks:
        reporter = ProgressReporter(fn, total=len(tasks), cached=len(outcomes))

    def flush(start: int, chunk_results: list[Any]) -> None:
        with obs.span("sweep.flush", n_results=len(chunk_results)):
            chunk = pending[start : start + len(chunk_results)]
            cache.update({keys[i]: outcome for i, outcome in zip(chunk, chunk_results)})
            outcomes.update(dict(zip(chunk, chunk_results)))
        if reporter is not None:
            reporter.emit(len(chunk_results))

    parallel_map_chunked(
        fn, [tasks[i] for i in pending], n_workers=n_workers, on_chunk=flush, policy=policy
    )
    with obs.span("sweep.merge", n_tasks=len(tasks)):
        return [outcomes[index] for index in range(len(tasks))]


# --------------------------------------------------------------------------- #
# Packet-success-rate sweep points                                            #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepPoint:
    """One independently-executable packet-success-rate sweep point.

    ``scenario`` is a declarative :class:`repro.api.specs.ScenarioSpec`;
    the receiver set travels as :class:`repro.api.specs.ReceiverSpec`
    entries resolved through the receiver registry at execution time.  Both
    are frozen dataclasses of primitives, so the point pickles into pool
    workers and content-hashes identically in every process.

    ``first_packet`` is the global index of the point's first packet
    (packet ``i`` draws from the child RNG stream of ``first_packet + i``).
    The adaptive campaign scheduler grows a point's budget in rounds by
    issuing consecutive ``[first_packet, first_packet + n_packets)`` windows
    of the same scenario; their counts merge losslessly into the one-long-run
    result (see :class:`repro.experiments.link.LinkResult`).
    """

    scenario: "ScenarioSpec"
    receivers: tuple["ReceiverSpec", ...]
    n_packets: int
    seed: int
    engine: str | None = field(default=None)
    first_packet: int = 0


def _simulate_point(point: SweepPoint) -> dict:
    from repro.api.registry import build_receiver

    scenario = point.scenario.build()
    receivers = {
        spec.name: build_receiver(spec, scenario.allocation) for spec in point.receivers
    }
    return packet_success_rate(
        scenario,
        receivers,
        point.n_packets,
        seed=point.seed,
        engine=point.engine,
        first_packet=point.first_packet,
    )


def run_sweep_point(point: SweepPoint) -> dict[str, float]:
    """Simulate one sweep point and return success percentages per receiver.

    Module-level so that it pickles into pool workers; all randomness derives
    from ``point.seed``, making the result independent of which worker (or
    order) executes it.
    """
    stats = _simulate_point(point)
    return {name: stat.success_percent for name, stat in stats.items()}


def run_sweep_point_counts(point: SweepPoint) -> dict[str, list[int]]:
    """Simulate one sweep point and return exact ``[n_success, n_packets]``
    counts per receiver.

    The campaign scheduler's task function: unlike :func:`run_sweep_point`
    it keeps the integer counts (JSON-exact, so point-cache round-trips are
    bit-identical) so consecutive rounds of the same point merge losslessly
    instead of averaging percentages.
    """
    stats = _simulate_point(point)
    return {name: [stat.n_success, stat.n_packets] for name, stat in stats.items()}
