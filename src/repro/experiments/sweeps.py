"""Shared sweep helpers for the packet-success-rate figures.

Every (MCS, SIR) point of a sweep is an independent simulation with its own
deterministic seed, so :func:`psr_vs_sir` dispatches the points through
:func:`repro.experiments.parallel.parallel_map` — serial by default, and
across a process pool when ``n_workers`` (or ``REPRO_WORKERS``) is greater
than one.  Scenario factories must be picklable for the pool to engage
(module-level functions or :func:`functools.partial` objects, as the figure
modules provide); closures still work but force serial execution.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.channel.scenario import Scenario
from repro.experiments.config import ExperimentProfile, build_receivers
from repro.experiments.link import packet_success_rate
from repro.experiments.parallel import parallel_map
from repro.experiments.results import FigureResult

__all__ = ["psr_vs_sir", "sir_axis"]


def sir_axis(low_db: float, high_db: float, n_points: int) -> list[float]:
    """Evenly spaced SIR values from low to high (inclusive)."""
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    return [round(float(value), 2) for value in np.linspace(low_db, high_db, n_points)]


@dataclass(frozen=True)
class _SweepPoint:
    """One independently-executable (MCS, SIR) point of a sweep."""

    scenario_factory: Callable[[str, float], Scenario]
    mcs_name: str
    sir_db: float
    receiver_names: tuple[str, ...]
    n_packets: int
    seed: int
    engine: str | None = field(default=None)


def _run_sweep_point(point: _SweepPoint) -> dict[str, float]:
    """Simulate one sweep point and return success percentages per receiver.

    Module-level so that it pickles into pool workers; all randomness derives
    from ``point.seed``, making the result independent of which worker (or
    order) executes it.
    """
    scenario = point.scenario_factory(point.mcs_name, point.sir_db)
    receivers = build_receivers(scenario.allocation, point.receiver_names)
    stats = packet_success_rate(
        scenario, receivers, point.n_packets, seed=point.seed, engine=point.engine
    )
    return {name: stats[name].success_percent for name in point.receiver_names}


def psr_vs_sir(
    figure: str,
    title: str,
    scenario_factory: Callable[[str, float], Scenario],
    mcs_names: tuple[str, ...],
    sir_values_db: list[float],
    profile: ExperimentProfile,
    receiver_names: tuple[str, ...] = ("standard", "cprecycle"),
    notes: list[str] | None = None,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """Packet success rate versus SIR for several MCS modes and receivers.

    ``scenario_factory(mcs_name, sir_db)`` builds the scenario of one sweep
    point; each (MCS, receiver) pair becomes one series of the figure, named
    the way the paper labels its curves ("QPSK (1/2) With CPRecycle", ...).
    Points run through the parallel execution backend; results are assembled
    in deterministic point order whatever the execution order was.  ``engine``
    picks the link engine per point (``None``: the ``REPRO_ENGINE`` default).
    """
    points = [
        _SweepPoint(
            scenario_factory=scenario_factory,
            mcs_name=mcs_name,
            sir_db=sir_db,
            receiver_names=receiver_names,
            n_packets=profile.n_packets,
            seed=profile.seed,
            engine=engine,
        )
        for mcs_name in mcs_names
        for sir_db in sir_values_db
    ]
    outcomes = parallel_map(_run_sweep_point, points, n_workers=n_workers)

    series: dict[str, list[float]] = {}
    for point, outcome in zip(points, outcomes):
        for receiver_name in receiver_names:
            label = _series_label(point.mcs_name, receiver_name)
            series.setdefault(label, []).append(outcome[receiver_name])
    return FigureResult(
        figure=figure,
        title=title,
        x_label="Signal to Interference ratio (dB)",
        x_values=list(sir_values_db),
        series=series,
        notes=notes or [],
    )


def _series_label(mcs_name: str, receiver_name: str) -> str:
    modulation, rate = mcs_name.split("-")
    pretty_mcs = f"{modulation.upper()} ({rate})"
    pretty_receiver = {
        "standard": "Without CPRecycle",
        "cprecycle": "With CPRecycle",
        "oracle": "Oracle",
        "naive": "Naive decoder",
    }.get(receiver_name, receiver_name)
    return f"{pretty_mcs} {pretty_receiver}"
