"""Result containers, serialisation and rendering for the experiment harness.

Every experiment returns a :class:`FigureResult`: the x-axis values, one named
series per curve of the corresponding paper figure, and free-form notes.  The
container is the unit of persistence — ``to_json``/``from_json`` round-trip it
exactly (floats use their shortest round-trip representation) under a schema
version, and :class:`repro.experiments.store.ResultStore` wraps the payload in
``results/<experiment>.json`` artifacts.  ``format_table`` / ``format_csv``
render the same rows/series the paper plots for the command-line runner and
the benchmark harness.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["FigureResult", "format_table", "format_csv", "RESULT_SCHEMA_VERSION"]

#: Version of the serialised :class:`FigureResult` payload.
RESULT_SCHEMA_VERSION = 1


@dataclass
class FigureResult:
    """One regenerated table or figure."""

    figure: str
    title: str
    x_label: str
    x_values: list[float | str]
    series: dict[str, list[float]]
    y_label: str = "Packet Success Rate (%)"
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} points but the x-axis has "
                    f"{len(self.x_values)}"
                )

    def series_names(self) -> list[str]:
        """Names of the plotted curves."""
        return list(self.series)

    def as_rows(self) -> list[dict[str, float | str]]:
        """Row-oriented view (one row per x value)."""
        rows = []
        for index, x in enumerate(self.x_values):
            row: dict[str, float | str] = {self.x_label: x}
            for name, values in self.series.items():
                row[name] = values[index]
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    # Serialisation                                                      #
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable payload (schema-versioned)."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "y_label": self.y_label,
            "series": {name: list(values) for name, values in self.series.items()},
            "notes": list(self.notes),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to JSON text; ``from_json`` restores an equal object."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FigureResult":
        """Rebuild a result from :meth:`to_dict` output, checking the schema."""
        version = payload.get("schema_version")
        if not isinstance(version, int) or version > RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported FigureResult schema version {version!r} "
                f"(this build reads <= {RESULT_SCHEMA_VERSION})"
            )
        return cls(
            figure=payload["figure"],
            title=payload["title"],
            x_label=payload["x_label"],
            x_values=list(payload["x_values"]),
            series={name: list(values) for name, values in payload["series"].items()},
            y_label=payload.get("y_label", "Packet Success Rate (%)"),
            notes=list(payload.get("notes", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "FigureResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def format_table(result: FigureResult, float_format: str = "{:8.2f}") -> str:
    """Render a :class:`FigureResult` as an aligned plain-text table.

    A result with no x-values renders as a headers-only table (title, header
    row and separator) rather than failing.
    """
    headers = [result.x_label, *result.series_names()]
    rows = []
    for index, x in enumerate(result.x_values):
        cells = [str(x)]
        for name in result.series_names():
            value = result.series[name][index]
            cells.append(float_format.format(value) if isinstance(value, (int, float)) else str(value))
        rows.append(cells)
    widths = [
        max([len(headers[col]), *(len(row[col]) for row in rows)])
        for col in range(len(headers))
    ]
    lines = [
        f"{result.figure}: {result.title}",
        f"(y: {result.y_label})",
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_csv(result: FigureResult) -> str:
    """Render a :class:`FigureResult` as CSV (header row, one row per x value)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    headers = [result.x_label, *result.series_names()]
    writer.writerow(headers)
    for row in result.as_rows():
        writer.writerow([row[header] for header in headers])
    return buffer.getvalue()
