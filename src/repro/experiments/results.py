"""Result containers and plain-text rendering for the experiment harness.

Every experiment returns a :class:`FigureResult`: the x-axis values, one named
series per curve of the corresponding paper figure, and free-form notes.  The
``format_table`` helper renders the same rows/series the paper plots, so the
benchmark harness and the command-line runner can print them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FigureResult", "format_table"]


@dataclass
class FigureResult:
    """One regenerated table or figure."""

    figure: str
    title: str
    x_label: str
    x_values: list[float | str]
    series: dict[str, list[float]]
    y_label: str = "Packet Success Rate (%)"
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} points but the x-axis has "
                    f"{len(self.x_values)}"
                )

    def series_names(self) -> list[str]:
        """Names of the plotted curves."""
        return list(self.series)

    def as_rows(self) -> list[dict[str, float | str]]:
        """Row-oriented view (one row per x value)."""
        rows = []
        for index, x in enumerate(self.x_values):
            row: dict[str, float | str] = {self.x_label: x}
            for name, values in self.series.items():
                row[name] = values[index]
            rows.append(row)
        return rows


def format_table(result: FigureResult, float_format: str = "{:8.2f}") -> str:
    """Render a :class:`FigureResult` as an aligned plain-text table."""
    headers = [result.x_label, *result.series_names()]
    rows = []
    for index, x in enumerate(result.x_values):
        cells = [str(x)]
        for name in result.series_names():
            value = result.series[name][index]
            cells.append(float_format.format(value) if isinstance(value, (int, float)) else str(value))
        rows.append(cells)
    widths = [max(len(headers[col]), *(len(row[col]) for row in rows)) for col in range(len(headers))]
    lines = [
        f"{result.figure}: {result.title}",
        f"(y: {result.y_label})",
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
