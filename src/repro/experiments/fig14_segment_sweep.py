"""Figure 14 — effect of the number of FFT segments (computational knob).

Packet success rate of the CPRecycle receiver as the number of FFT segments
is swept from one (equivalent to the standard receiver) to the full cyclic
prefix, for ACI at SIR -10/-20/-30 dB with 16-QAM.  The paper's findings:
benefits saturate once roughly 60 % of the cyclic prefix is used, and at mild
interference 20 % is already enough — so CPRecycle degrades gracefully on
computation-limited devices and in high-delay-spread environments.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, aci_scenario, build_receivers, default_profile
from repro.experiments.link import packet_success_rate
from repro.experiments.results import FigureResult

__all__ = ["run", "main"]

MCS_NAME = "16qam-1/2"
#: Fractions of the cyclic prefix used as FFT segments.
SEGMENT_FRACTIONS: tuple[float, ...] = (0.025, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    segment_fractions: tuple[float, ...] = SEGMENT_FRACTIONS,
) -> FigureResult:
    """Packet success rate vs number of FFT segments (as % of the CP)."""
    profile = profile or default_profile()
    series: dict[str, list[float]] = {}
    x_values: list[float] = []
    for sir_db in sir_values_db:
        scenario = aci_scenario(MCS_NAME, sir_db=sir_db, payload_length=profile.payload_length)
        cp_length = scenario.allocation.cp_length
        x_values = []
        for fraction in segment_fractions:
            n_segments = max(1, int(round(fraction * cp_length)))
            x_values.append(round(100.0 * n_segments / cp_length, 1))
            receivers = build_receivers(
                scenario.allocation, ("cprecycle",), n_segments=n_segments
            )
            stats = packet_success_rate(scenario, receivers, profile.n_packets, seed=profile.seed)
            series.setdefault(f"SIR {sir_db:g} dB", []).append(
                stats["cprecycle"].success_percent
            )
    return FigureResult(
        figure="Figure 14",
        title=f"PSR vs number of FFT segments ({MCS_NAME}, single ACI interferer)",
        x_label="Number of FFT Segments (% of CP)",
        x_values=x_values,
        series=series,
        notes=["one FFT segment is equivalent to the standard OFDM receiver"],
    )


def main() -> None:
    """Print Figure 14."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
