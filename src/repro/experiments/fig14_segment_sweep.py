"""Figure 14 — effect of the number of FFT segments (computational knob).

Packet success rate of the CPRecycle receiver as the number of FFT segments
is swept from one (equivalent to the standard receiver) to the full cyclic
prefix, for ACI at SIR -10/-20/-30 dB with 16-QAM.  The paper's findings:
benefits saturate once roughly 60 % of the cyclic prefix is used, and at mild
interference 20 % is already enough — so CPRecycle degrades gracefully on
computation-limited devices and in high-delay-spread environments.

The figure is one declarative :class:`~repro.api.ExperimentSpec`: the
``segment_fraction`` sweep axis resolves each fraction into the receiver's
segment budget (``max(1, round(fraction * cp_length))``) and the x-axis is
rendered as a percentage of the cyclic prefix via ``x_transform``.  Every
(SIR x fraction) grid cell is an independent sweep point on the shared
execution layer, so ``--workers``/``--engine`` and the persistent point
cache apply exactly as in the SIR-sweep figures.
"""

from __future__ import annotations

from repro.api import (
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_experiment_spec,
)
from repro.experiments.config import ExperimentProfile
from repro.experiments.results import FigureResult

__all__ = ["SPEC", "build_spec", "run", "main"]

MCS_NAME = "16qam-1/2"
#: Fractions of the cyclic prefix used as FFT segments.
SEGMENT_FRACTIONS: tuple[float, ...] = (0.025, 0.2, 0.4, 0.6, 0.8, 1.0)


def build_spec(
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    segment_fractions: tuple[float, ...] = SEGMENT_FRACTIONS,
    engine: str | None = None,
) -> ExperimentSpec:
    """The canonical Figure 14 spec (optionally with a custom grid)."""
    return ExperimentSpec(
        name="fig14",
        figure="Figure 14",
        title=f"PSR vs number of FFT segments ({MCS_NAME}, single ACI interferer)",
        scenario=ScenarioSpec(mcs_name=MCS_NAME, interferers=(InterfererSpec(kind="aci"),)),
        receivers=(ReceiverSpec("cprecycle"),),
        sweep=SweepSpec(
            axes=(
                SweepAxis("sir_db", values=tuple(sir_values_db)),
                SweepAxis("segment_fraction", values=tuple(segment_fractions)),
            )
        ),
        series_label="SIR {sir_db:g} dB",
        x_label="Number of FFT Segments (% of CP)",
        x_transform="segment_percent_of_cp",
        notes=("one FFT segment is equivalent to the standard OFDM receiver",),
        engine=engine,
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    segment_fractions: tuple[float, ...] = SEGMENT_FRACTIONS,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """Packet success rate vs number of FFT segments (as % of the CP)."""
    return run_experiment_spec(
        build_spec(sir_values_db, segment_fractions, engine=engine), profile, n_workers=n_workers
    )


def main() -> None:
    """Print Figure 14."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
