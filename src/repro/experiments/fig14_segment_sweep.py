"""Figure 14 — effect of the number of FFT segments (computational knob).

Packet success rate of the CPRecycle receiver as the number of FFT segments
is swept from one (equivalent to the standard receiver) to the full cyclic
prefix, for ACI at SIR -10/-20/-30 dB with 16-QAM.  The paper's findings:
benefits saturate once roughly 60 % of the cyclic prefix is used, and at mild
interference 20 % is already enough — so CPRecycle degrades gracefully on
computation-limited devices and in high-delay-spread environments.

The (SIR x segment-fraction) grid runs as independent sweep points through
the shared execution layer (``SweepPoint.n_segments`` carries the receiver's
segment budget), so ``--workers``/``--engine`` and the persistent point cache
apply exactly as in the SIR-sweep figures.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.config import ExperimentProfile, aci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import SweepPoint, execute_points, run_sweep_point

__all__ = ["run", "main"]

MCS_NAME = "16qam-1/2"
#: Fractions of the cyclic prefix used as FFT segments.
SEGMENT_FRACTIONS: tuple[float, ...] = (0.025, 0.2, 0.4, 0.6, 0.8, 1.0)


def run(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    segment_fractions: tuple[float, ...] = SEGMENT_FRACTIONS,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """Packet success rate vs number of FFT segments (as % of the CP)."""
    profile = profile or default_profile()
    # The CP length depends only on the allocation geometry, not the SIR, so
    # one probe scenario fixes the x axis for every grid cell.
    cp_length = aci_scenario(
        MCS_NAME, sir_db=sir_values_db[0], payload_length=profile.payload_length
    ).allocation.cp_length
    segment_counts = [max(1, int(round(fraction * cp_length))) for fraction in segment_fractions]
    x_values = [round(100.0 * count / cp_length, 1) for count in segment_counts]
    points = [
        SweepPoint(
            scenario_factory=partial(aci_scenario, payload_length=profile.payload_length),
            mcs_name=MCS_NAME,
            sir_db=sir_db,
            receiver_names=("cprecycle",),
            n_packets=profile.n_packets,
            seed=profile.seed,
            engine=engine,
            n_segments=n_segments,
        )
        for sir_db in sir_values_db
        for n_segments in segment_counts
    ]
    outcomes = execute_points(run_sweep_point, points, n_workers=n_workers)

    series: dict[str, list[float]] = {}
    for point, outcome in zip(points, outcomes):
        series.setdefault(f"SIR {point.sir_db:g} dB", []).append(outcome["cprecycle"])
    return FigureResult(
        figure="Figure 14",
        title=f"PSR vs number of FFT segments ({MCS_NAME}, single ACI interferer)",
        x_label="Number of FFT Segments (% of CP)",
        x_values=x_values,
        series=series,
        notes=["one FFT segment is equivalent to the standard OFDM receiver"],
    )


def main() -> None:
    """Print Figure 14."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
