"""Command-line entry point regenerating the paper's tables and figures.

Every experiment runs through the shared sweep-execution layer
(:mod:`repro.experiments.sweeps`), so ``--workers`` and ``--engine`` apply
uniformly to all of them, and results can be persisted as reloadable JSON
artifacts (:mod:`repro.experiments.store`).

Usage::

    cprecycle-experiments                 # run everything with the quick profile
    cprecycle-experiments fig8 fig11      # run a subset
    cprecycle-experiments --profile full  # paper-scale run (hours)
    cprecycle-experiments --workers 8     # process-pool parallel sweep points
    cprecycle-experiments --engine reference  # per-packet verification engine
    cprecycle-experiments --out results   # write results/<figure>.json artifacts
    cprecycle-experiments --format json   # print JSON (or csv) instead of tables
    cprecycle-experiments --profile full --out results --resume
                                          # resume an interrupted run: completed
                                          # sweep points are read from the point
                                          # cache under results/.cache/
"""

from __future__ import annotations

import argparse
import os
from collections.abc import Callable
from pathlib import Path

from repro.experiments import (
    fig04_segments,
    fig05_naive,
    fig06_kde,
    fig08_aci_single,
    fig09_aci_two,
    fig10_guardband,
    fig11_cci_single,
    fig12_cci_two,
    fig13_network,
    fig14_segment_sweep,
    table01_cp,
)
from repro.experiments.config import FULL_PROFILE, QUICK_PROFILE, ExperimentProfile
from repro.experiments.link import default_engine
from repro.experiments.results import format_csv, format_table
from repro.experiments.store import CACHE_ENV_VAR, ResultStore

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: dict[str, Callable[..., object]] = {
    "table1": table01_cp.run_isi_free_analysis,
    "fig4": fig04_segments.run,
    "fig5": fig05_naive.run,
    "fig6": fig06_kde.run,
    "fig8": fig08_aci_single.run,
    "fig9": fig09_aci_two.run,
    "fig10": fig10_guardband.run,
    "fig11": fig11_cci_single.run,
    "fig12": fig12_cci_two.run,
    "fig13": fig13_network.run,
    "fig14": fig14_segment_sweep.run,
}

_NO_PROFILE_ARG = {"table1"}


def run_experiment(name: str, profile: ExperimentProfile):
    """Run one named experiment and return its result object."""
    if name not in EXPERIMENTS:
        raise ValueError(f"unknown experiment {name!r}; valid: {sorted(EXPERIMENTS)}")
    runner = EXPERIMENTS[name]
    if name in _NO_PROFILE_ARG:
        return runner()
    return runner(profile)


_FORMATTERS = {
    "table": lambda result: format_table(result),
    "json": lambda result: result.to_json(),
    "csv": format_csv,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Regenerate the CPRecycle evaluation figures")
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"experiments to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default="quick",
        help="quick: seconds per figure; full: paper-scale packet counts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run independent sweep points on N worker processes "
        "(default: REPRO_WORKERS or serial); results are identical for any N",
    )
    parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="link-simulation engine: 'fast' (batched, default) or 'reference' "
        "(per-packet/per-symbol verification fallback)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write one reloadable <experiment>.json artifact per experiment "
        "into DIR (keyed by profile/engine/config hash)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="stdout rendering of each result (default: table)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="persist completed sweep points under <out>/.cache and skip them "
        "on re-runs, so an interrupted run resumes instead of restarting "
        "(default out dir: results/)",
    )
    args = parser.parse_args(argv)
    profile = FULL_PROFILE if args.profile == "full" else QUICK_PROFILE
    out_dir: Path | None = args.out
    if args.resume and out_dir is None:
        out_dir = Path("results")
    # Thread the execution knobs through the figure modules via the
    # environment so that every nested sweep picks them up; restore the
    # previous values on exit so an in-process caller's later work is not
    # silently switched to this invocation's engine, worker count or cache.
    overrides: dict[str, str] = {}
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be at least 1")
        overrides["REPRO_WORKERS"] = str(args.workers)
    if args.engine is not None:
        overrides["REPRO_ENGINE"] = args.engine
    if args.resume:
        overrides[CACHE_ENV_VAR] = str(out_dir / ".cache")
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    store = ResultStore(out_dir) if out_dir is not None else None
    try:
        for name in args.experiments:
            result = run_experiment(name, profile)
            print(_FORMATTERS[args.format](result))
            print()
            if store is not None:
                store.save(name, result, profile=profile, engine=default_engine())
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
