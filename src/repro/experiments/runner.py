"""Command-line entry point regenerating the paper's tables and figures.

Every builtin experiment is a declarative :class:`repro.api.ExperimentSpec`
(``BUILTIN_SPECS``) executed through the
:func:`repro.api.run_experiment_spec` facade on the shared sweep-execution
layer, so ``--workers`` and ``--engine`` apply uniformly to all of them,
results persist as reloadable JSON artifacts keyed by profile/engine/spec
hash (:mod:`repro.experiments.store`), and custom scenarios run from a spec
file without any new figure module.

Usage::

    cprecycle-experiments                 # run everything with the quick profile
    cprecycle-experiments fig8 fig11      # run a subset
    cprecycle-experiments --profile full  # paper-scale run (hours)
    cprecycle-experiments --workers 8     # process-pool parallel sweep points
    cprecycle-experiments --engine reference  # per-packet verification engine
    cprecycle-experiments --out results   # write results/<figure>.json artifacts
    cprecycle-experiments --format json   # print JSON (or csv) instead of tables
    cprecycle-experiments --profile full --out results --resume
                                          # resume an interrupted run: completed
                                          # sweep points are read from the point
                                          # cache under results/.cache/
    cprecycle-experiments fig8 --dump-spec > my.json
                                          # export a builtin figure as a
                                          # self-contained spec JSON
    cprecycle-experiments --spec my.json --workers 2 --out results
                                          # run an edited / hand-written spec
    cprecycle-experiments fig13 --mode simulated --workers 8
                                          # network-scale per-link simulation:
                                          # every AP pair becomes a co-channel
                                          # scenario instead of the 15 dB
                                          # threshold shift (heavier; see
                                          # repro.network.links)
    cprecycle-experiments --list          # print every registered experiment,
                                          # analysis, receiver and topology
    cprecycle-experiments --progress ...  # one stderr line per completed
                                          # sweep chunk (REPRO_PROGRESS=1)
    cprecycle-experiments campaign --spec my-campaign.json --resume
                                          # run many experiments as one
                                          # adaptively-sampled campaign with
                                          # checkpoint/resume and a summary
                                          # report (see repro.campaigns)
    cprecycle-experiments lint --project src/ tests/
                                          # determinism/process-safety static
                                          # analysis (per-file rules
                                          # RPR001-RPR006 and RPR011 plus the
                                          # whole-program rules RPR007-RPR010
                                          # with --project, see repro.lint);
                                          # also available as repro-lint /
                                          # python -m repro.lint
    cprecycle-experiments sanitize-diff DIR1 DIR2 [DIR...]
                                          # digest-compare REPRO_SANITIZE
                                          # spools from runs differing only in
                                          # engine or worker count; exits 1 on
                                          # any mismatch (see
                                          # repro.utils.sanitize)
    cprecycle-experiments fig4 --trace traces/fig4 --workers 2
                                          # span-traced run: every sweep,
                                          # dispatch and pool task spools its
                                          # span tree under the directory
                                          # (same as REPRO_TRACE=DIR; bare
                                          # --trace uses ./trace)
    cprecycle-experiments trace-report traces/fig4 [DIR...]
                                          # merge trace spools into trace.json
                                          # + a chrome://tracing export and
                                          # print span/wallclock/recovery
                                          # reports (several DIRs compare
                                          # engines or worker counts)
"""

from __future__ import annotations

import argparse
import os
from collections.abc import Callable
from dataclasses import replace
from pathlib import Path

from repro.api import ExperimentSpec, SpecError, run_experiment_spec, spec_hash
from repro.experiments import (
    fig04_segments,
    fig05_naive,
    fig06_kde,
    fig08_aci_single,
    fig09_aci_two,
    fig10_guardband,
    fig11_cci_single,
    fig12_cci_two,
    fig13_network,
    fig14_segment_sweep,
    table01_cp,
)
from repro.experiments.config import FULL_PROFILE, QUICK_PROFILE, ExperimentProfile
from repro.experiments.link import default_engine
from repro.experiments.parallel import (
    RETRIES_ENV_VAR,
    TIMEOUT_ENV_VAR,
    FailurePolicy,
    resolve_workers,
)
from repro.experiments.results import format_csv, format_table
from repro.experiments.store import CACHE_ENV_VAR, ResultStore
from repro.experiments.sweeps import PROGRESS_ENV_VAR, progress_enabled
from repro.obs import TRACE_ENV_VAR

__all__ = ["EXPERIMENTS", "BUILTIN_SPECS", "builtin_spec", "run_experiment", "main"]

#: Legacy per-figure entry points (kept for library callers and tests).
EXPERIMENTS: dict[str, Callable[..., object]] = {
    "table1": table01_cp.run_isi_free_analysis,
    "fig4": fig04_segments.run,
    "fig5": fig05_naive.run,
    "fig6": fig06_kde.run,
    "fig8": fig08_aci_single.run,
    "fig9": fig09_aci_two.run,
    "fig10": fig10_guardband.run,
    "fig11": fig11_cci_single.run,
    "fig12": fig12_cci_two.run,
    "fig13": fig13_network.run,
    "fig14": fig14_segment_sweep.run,
}

#: The canonical declarative spec of every builtin experiment.
BUILTIN_SPECS: dict[str, Callable[[], ExperimentSpec]] = {
    "table1": table01_cp.build_spec,
    "fig4": fig04_segments.build_spec,
    "fig5": fig05_naive.build_spec,
    "fig6": fig06_kde.build_spec,
    "fig8": fig08_aci_single.build_spec,
    "fig9": fig09_aci_two.build_spec,
    "fig10": fig10_guardband.build_spec,
    "fig11": fig11_cci_single.build_spec,
    "fig12": fig12_cci_two.build_spec,
    "fig13": fig13_network.build_spec,
    "fig14": fig14_segment_sweep.build_spec,
}

#: The simulated-mode Figure 13 variant is a first-class builtin spec, but
#: deliberately not part of EXPERIMENTS: a default "run everything" stays
#: threshold-fast, while `fig13 --mode simulated` (or naming fig13-simulated
#: explicitly) opts into the per-link network simulation.
BUILTIN_SPECS["fig13-simulated"] = lambda: fig13_network.build_spec(mode="simulated")


def builtin_spec(name: str) -> ExperimentSpec:
    """The canonical :class:`ExperimentSpec` of one builtin experiment."""
    if name not in BUILTIN_SPECS:
        raise ValueError(f"unknown experiment {name!r}; valid: {sorted(BUILTIN_SPECS)}")
    return BUILTIN_SPECS[name]()


def run_experiment(name: str, profile: ExperimentProfile):
    """Run one named builtin experiment (through its spec) and return the result."""
    return run_experiment_spec(builtin_spec(name), profile)


_FORMATTERS = {
    "table": lambda result: format_table(result),
    "json": lambda result: result.to_json(),
    "csv": format_csv,
}


def _print_registries() -> None:
    """The ``--list`` output: every registered name, grouped by registry."""
    from repro.api.registry import (
        available_analyses,
        available_receivers,
        available_topologies,
    )

    print("experiments (run as: cprecycle-experiments <name>):")
    for name in BUILTIN_SPECS:
        spec = BUILTIN_SPECS[name]()
        print(f"  {name:<16} {spec.figure}: {spec.title}")
    print("analyses (ExperimentSpec kind='analysis', field 'analysis'):")
    for name in available_analyses():
        print(f"  {name}")
    print("receivers (ReceiverSpec 'name'):")
    for name in available_receivers():
        print(f"  {name}")
    print("topologies (DeploymentSpec 'topology'):")
    for name in available_topologies():
        print(f"  {name}")
    from repro.lint.rules import rules_table

    print("lint rules (run as: cprecycle-experiments lint src/):")
    for code, rule_name, summary in rules_table():
        print(f"  {code}  {rule_name:<20} {summary}")
    print("observability (repro.obs):")
    print(
        f"  trace            span-traced runs via --trace [DIR] or {TRACE_ENV_VAR}=1|DIR; "
        "report: cprecycle-experiments trace-report DIR [DIR...]"
    )


def _sanitize_diff_main(argv: list[str]) -> int:
    """``cprecycle-experiments sanitize-diff DIR DIR [DIR...]``.

    Merges each ``REPRO_SANITIZE`` spool directory into its ``report.json``
    and digest-compares them against the first: task sets, outcome digests
    and per-task RNG stream digests must all be bit-identical.  Exit codes
    mirror ``repro lint``: 0 identical, 1 mismatches, 2 usage error.
    """
    import sys

    from repro.utils.sanitize import diff_reports

    prog = "cprecycle-experiments sanitize-diff"
    if any(flag in argv for flag in ("-h", "--help")):
        print(f"usage: {prog} DIR1 DIR2 [DIR...]")
        print("  compare REPRO_SANITIZE spool directories for digest identity")
        return 0
    directories = [Path(raw) for raw in argv]
    if len(directories) < 2:
        print(f"{prog}: need at least two spool directories to compare", file=sys.stderr)
        return 2
    missing = [directory for directory in directories if not directory.is_dir()]
    if missing:
        for directory in missing:
            print(f"{prog}: not a directory: {directory}", file=sys.stderr)
        return 2
    mismatches = diff_reports(directories)
    for line in mismatches:
        print(line)
    if mismatches:
        print(f"{prog}: {len(mismatches)} digest mismatch(es) found", file=sys.stderr)
        return 1
    print(
        f"{prog}: {len(directories)} reports bit-identical "
        f"(see report.json in each directory)",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        # The campaign subcommand has its own option set (see
        # repro.campaigns.cli); the import is lazy so plain figure runs do
        # not pay for the campaigns package.
        from repro.campaigns.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "lint":
        # Determinism/process-safety static analysis (see repro.lint); the
        # same engine backs the repro-lint script and python -m repro.lint.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:], prog="cprecycle-experiments lint")
    if argv and argv[0] == "sanitize-diff":
        return _sanitize_diff_main(argv[1:])
    if argv and argv[0] == "trace-report":
        # Trace merge/report tooling (see repro.obs.report); lazy so plain
        # figure runs do not import the report layer.
        from repro.obs.report import trace_report_main

        return trace_report_main(argv[1:])

    parser = argparse.ArgumentParser(description="Regenerate the CPRecycle evaluation figures")
    parser.add_argument(
        "experiments",
        nargs="*",
        default=None,
        help=f"experiments to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default="quick",
        help="quick: seconds per figure; full: paper-scale packet counts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run independent sweep points on N worker processes "
        "(default: REPRO_WORKERS or serial); results are identical for any N",
    )
    parser.add_argument(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="link-simulation engine: 'fast' (batched, default) or 'reference' "
        "(per-packet/per-symbol verification fallback)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-execute a failed or timed-out sweep task up to N times with "
        f"exponential backoff (default: {RETRIES_ENV_VAR} or "
        f"{FailurePolicy().max_retries}); retried work is bit-identical by "
        "construction",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon and re-dispatch a sweep task running longer than this "
        f"many seconds (pool mode only; default: {TIMEOUT_ENV_VAR} or no limit)",
    )
    parser.add_argument(
        "--mode",
        choices=("threshold", "simulated"),
        default=None,
        help="fig13 neighbour-count mode: 'threshold' (the paper's fixed 15 dB "
        "shift, the default) or 'simulated' (per-link co-channel scenarios "
        "through the sweep layer; heavier)",
    )
    parser.add_argument(
        "--spec",
        type=Path,
        default=None,
        metavar="FILE",
        help="run a declarative ExperimentSpec JSON file instead of builtin "
        "experiments (author one from scratch or start from --dump-spec)",
    )
    parser.add_argument(
        "--dump-spec",
        action="store_true",
        help="print the named builtin experiment as a self-contained spec JSON "
        "(resolved against the selected profile) and exit without running",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write one reloadable <experiment>.json artifact per experiment "
        "into DIR (keyed by profile/engine/spec hash)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="stdout rendering of each result (default: table)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="persist completed sweep points under <out>/.cache and skip them "
        "on re-runs, so an interrupted run resumes instead of restarting "
        "(default out dir: results/)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one stderr line per completed sweep chunk (points done/total "
        "and elapsed time; same as REPRO_PROGRESS=1)",
    )
    parser.add_argument(
        "--trace",
        nargs="?",
        const="1",
        default=None,
        metavar="DIR",
        help="record a span trace of the run: every sweep, dispatch and pool "
        "task spools its span tree under DIR (default ./trace; same as "
        f"{TRACE_ENV_VAR}=DIR); render with 'cprecycle-experiments "
        "trace-report DIR'. Tracing never changes results",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print every registered experiment, analysis, receiver and network "
        "topology, then exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        _print_registries()
        return 0
    profile = FULL_PROFILE if args.profile == "full" else QUICK_PROFILE

    if args.mode is not None:
        # --mode selects the fig13 variant; rewriting the experiment name up
        # front lets every later stage (--dump-spec, artifacts, the spec
        # hash) see the variant as a first-class experiment.
        if args.spec is not None:
            parser.error("--mode selects a fig13 variant; it cannot follow --spec")
        if "fig13" not in (args.experiments or []):
            parser.error("--mode applies to fig13; name it explicitly (e.g. fig13 --mode simulated)")
        if args.mode == "simulated":
            args.experiments = [
                "fig13-simulated" if name == "fig13" else name for name in args.experiments
            ]

    # Fail fast on malformed worker/engine knobs (--workers 0,
    # REPRO_ENGINE=fsat, REPRO_WORKERS=0) instead of erroring deep inside
    # the first sweep; an explicit CLI flag shadows the corresponding
    # environment variable, so the env value is only checked when it is
    # the one that will be consumed.
    try:
        if args.engine is None:
            default_engine()
        resolve_workers(args.workers)
        FailurePolicy.from_env(args.max_retries, args.task_timeout)
        if not args.progress:
            progress_enabled()
    except ValueError as error:
        parser.error(str(error))

    if args.dump_spec:
        if args.spec is not None:
            parser.error("--dump-spec exports a builtin experiment; it cannot follow --spec")
        if not args.experiments or len(args.experiments) != 1:
            parser.error("--dump-spec needs exactly one experiment name (e.g. fig8)")
        try:
            spec = builtin_spec(args.experiments[0]).resolve(profile)
        except ValueError as error:
            parser.error(str(error))
        if args.engine is not None and spec.kind == "psr":
            spec = replace(spec, engine=args.engine)
        print(spec.to_json())
        return 0

    spec_file: ExperimentSpec | None = None
    if args.spec is not None:
        if args.experiments:
            parser.error("--spec runs a spec file; don't pass experiment names as well")
        try:
            spec_file = ExperimentSpec.from_json(args.spec.read_text())
        except OSError as error:
            parser.error(f"cannot read spec file {args.spec}: {error}")
        except SpecError as error:
            parser.error(f"invalid spec file {args.spec}: {error}")
        if args.engine is not None and spec_file.kind == "psr":
            # An explicit CLI flag beats the spec's pinned engine (per-point
            # engine fields would otherwise override the environment).
            # Analysis specs never touch the link engine and cannot pin one.
            spec_file = replace(spec_file, engine=args.engine)

    names = args.experiments or list(EXPERIMENTS)
    out_dir: Path | None = args.out
    if args.resume and out_dir is None:
        out_dir = Path("results")
    # Thread the execution knobs through the figure modules via the
    # environment so that every nested sweep picks them up; restore the
    # previous values on exit so an in-process caller's later work is not
    # silently switched to this invocation's engine, worker count or cache.
    overrides: dict[str, str] = {}
    if args.workers is not None:
        overrides["REPRO_WORKERS"] = str(args.workers)
    if args.engine is not None:
        overrides["REPRO_ENGINE"] = args.engine
    if args.resume:
        overrides[CACHE_ENV_VAR] = str(out_dir / ".cache")
    if args.progress:
        overrides[PROGRESS_ENV_VAR] = "1"
    if args.trace is not None:
        overrides[TRACE_ENV_VAR] = args.trace
    if args.max_retries is not None:
        overrides[RETRIES_ENV_VAR] = str(args.max_retries)
    if args.task_timeout is not None:
        overrides[TIMEOUT_ENV_VAR] = str(args.task_timeout)
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    store = ResultStore(out_dir) if out_dir is not None else None

    def emit(name: str, spec: ExperimentSpec) -> None:
        result = run_experiment_spec(spec, profile)
        print(_FORMATTERS[args.format](result))
        print()
        if store is not None:
            # A spec that pins its own engine wins over the environment at
            # every sweep point; record what actually ran.
            store.save(
                name,
                result,
                profile=profile,
                engine=spec.engine if spec.engine is not None else default_engine(),
                spec_hash=spec_hash(spec.resolve(profile)),
            )

    try:
        if spec_file is not None:
            emit(spec_file.name, spec_file)
        else:
            for name in names:
                emit(name, builtin_spec(name))
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
