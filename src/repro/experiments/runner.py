"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    cprecycle-experiments                # run everything with the quick profile
    cprecycle-experiments fig8 fig11     # run a subset
    cprecycle-experiments --profile full # paper-scale run (hours)
"""

from __future__ import annotations

import argparse
from collections.abc import Callable

from repro.experiments import (
    fig04_segments,
    fig05_naive,
    fig06_kde,
    fig08_aci_single,
    fig09_aci_two,
    fig10_guardband,
    fig11_cci_single,
    fig12_cci_two,
    fig13_network,
    fig14_segment_sweep,
    table01_cp,
)
from repro.experiments.config import FULL_PROFILE, QUICK_PROFILE, ExperimentProfile
from repro.experiments.results import format_table

__all__ = ["EXPERIMENTS", "run_experiment", "main"]

EXPERIMENTS: dict[str, Callable[..., object]] = {
    "table1": table01_cp.run_isi_free_analysis,
    "fig4": fig04_segments.run,
    "fig5": fig05_naive.run,
    "fig6": fig06_kde.run,
    "fig8": fig08_aci_single.run,
    "fig9": fig09_aci_two.run,
    "fig10": fig10_guardband.run,
    "fig11": fig11_cci_single.run,
    "fig12": fig12_cci_two.run,
    "fig13": fig13_network.run,
    "fig14": fig14_segment_sweep.run,
}

_NO_PROFILE_ARG = {"table1"}


def run_experiment(name: str, profile: ExperimentProfile):
    """Run one named experiment and return its result object."""
    if name not in EXPERIMENTS:
        raise ValueError(f"unknown experiment {name!r}; valid: {sorted(EXPERIMENTS)}")
    runner = EXPERIMENTS[name]
    if name in _NO_PROFILE_ARG:
        return runner()
    return runner(profile)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description="Regenerate the CPRecycle evaluation figures")
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(EXPERIMENTS),
        help=f"experiments to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--profile",
        choices=("quick", "full"),
        default="quick",
        help="quick: seconds per figure; full: paper-scale packet counts",
    )
    args = parser.parse_args(argv)
    profile = FULL_PROFILE if args.profile == "full" else QUICK_PROFILE

    for name in args.experiments:
        result = run_experiment(name, profile)
        print(format_table(result))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
