"""Shared configuration of the evaluation experiments.

Two execution profiles are provided:

* ``quick`` (default) — small packet counts and payloads so that every figure
  can be regenerated in seconds; used by the benchmark suite and CI.
* ``full`` — paper-scale parameters (2000 packets of 400 bytes per point).

Select the profile with the ``REPRO_PROFILE`` environment variable or by
passing a profile object to the experiment functions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.channel.interference import adjacent_channel_interferer, co_channel_interferer
from repro.channel.scenario import Scenario
from repro.phy.subcarriers import OfdmAllocation, dot11g_allocation, wideband_allocation
from repro.receiver.base import OfdmReceiverBase

__all__ = [
    "ExperimentProfile",
    "QUICK_PROFILE",
    "FULL_PROFILE",
    "default_profile",
    "SNR_FOR_MCS",
    "PAPER_MCS_SET",
    "ACI_EDGE_WINDOW",
    "aci_sender_allocation",
    "aci_scenario",
    "cci_scenario",
    "build_receivers",
]

#: SNR operating point per MCS, chosen (as in the paper) so that each scheme
#: is the highest-throughput choice at that SNR in the interference-free case.
SNR_FOR_MCS: dict[str, float] = {
    "bpsk-1/2": 18.0,
    "qpsk-1/2": 25.0,
    "qpsk-3/4": 26.0,
    "16qam-1/2": 28.0,
    "16qam-3/4": 30.0,
    "64qam-2/3": 32.0,
    "64qam-3/4": 34.0,
}

#: The three MCS modes the paper evaluates in Figs. 8, 9, 11 and 12.
PAPER_MCS_SET: tuple[str, ...] = ("qpsk-1/2", "16qam-1/2", "64qam-2/3")

#: Raised-cosine taper applied to interferer symbol transitions in the ACI
#: experiments; models the spectral shaping of a real transmit chain (see
#: DESIGN.md).  Set to 0 for the worst-case rectangular baseband.
ACI_EDGE_WINDOW = 8


@dataclass(frozen=True)
class ExperimentProfile:
    """Execution-scale knobs shared by every experiment."""

    name: str
    n_packets: int
    payload_length: int
    n_sir_points: int
    seed: int = 2016

    def scaled(self, **overrides: object) -> "ExperimentProfile":
        """A copy of the profile with some fields overridden."""
        return replace(self, **overrides)  # type: ignore[arg-type]


QUICK_PROFILE = ExperimentProfile(name="quick", n_packets=10, payload_length=60, n_sir_points=5)
FULL_PROFILE = ExperimentProfile(name="full", n_packets=2000, payload_length=400, n_sir_points=11)


def default_profile() -> ExperimentProfile:
    """Profile selected by the ``REPRO_PROFILE`` environment variable."""
    choice = os.environ.get("REPRO_PROFILE", "quick").strip().lower()
    if choice == "full":
        return FULL_PROFILE
    if choice in ("quick", ""):
        return QUICK_PROFILE
    raise ValueError(f"unknown REPRO_PROFILE {choice!r}; use 'quick' or 'full'")


# --------------------------------------------------------------------------- #
# Scenario builders                                                           #
# --------------------------------------------------------------------------- #
def aci_sender_allocation(two_sided: bool = False, guard_subcarriers: int = 4) -> OfdmAllocation:
    """Sender allocation for the adjacent-channel-interference experiments.

    A single-sided interferer uses the paper's Fig. 4 layout (160-bin grid,
    sender on bins 1..64).  With two interferers, or with a large guard band,
    the sender sits in the middle of a 256-bin grid so that blocks fit on both
    sides.
    """
    if two_sided:
        return wideband_allocation(fft_size=256, start_bin=96, name="wideband-sender")
    if guard_subcarriers > 27:
        # A larger grid is needed so the interferer block fits beyond the guard.
        return wideband_allocation(fft_size=256, start_bin=1, name="wideband-sender")
    return wideband_allocation(fft_size=160, start_bin=1, name="wideband-sender")


def aci_scenario(
    mcs_name: str,
    sir_db: float,
    payload_length: int,
    guard_subcarriers: int = 4,
    two_sided: bool = False,
    snr_db: float | None = None,
    edge_window_length: int = ACI_EDGE_WINDOW,
) -> Scenario:
    """Adjacent-channel-interference scenario (Figs. 4, 5, 8, 9, 10, 14)."""
    sender = aci_sender_allocation(two_sided=two_sided, guard_subcarriers=guard_subcarriers)
    sides = ("upper", "lower") if two_sided else ("upper",)
    per_interferer_sir = sir_db + (10.0 * 0.30103 if len(sides) == 2 else 0.0)  # split power
    interferers = [
        adjacent_channel_interferer(
            sender,
            sir_db=per_interferer_sir,
            guard_subcarriers=guard_subcarriers,
            side=side,
            edge_window_length=edge_window_length,
        )
        for side in sides
    ]
    return Scenario(
        sender,
        mcs_name=mcs_name,
        payload_length=payload_length,
        snr_db=SNR_FOR_MCS[mcs_name] if snr_db is None else snr_db,
        interferers=interferers,
    )


def cci_scenario(
    mcs_name: str,
    sir_db: float,
    payload_length: int,
    n_interferers: int = 1,
    snr_db: float | None = None,
) -> Scenario:
    """Co-channel-interference scenario on the 802.11g allocation (Figs. 11, 12)."""
    sender = dot11g_allocation()
    per_interferer_sir = sir_db + 10.0 * 0.30103 * (n_interferers - 1)
    interferers = [
        co_channel_interferer(sender, sir_db=per_interferer_sir, label=f"cci-{index}")
        for index in range(n_interferers)
    ]
    return Scenario(
        sender,
        mcs_name=mcs_name,
        payload_length=payload_length,
        snr_db=SNR_FOR_MCS[mcs_name] if snr_db is None else snr_db,
        interferers=interferers,
    )


# --------------------------------------------------------------------------- #
# Receiver sets                                                               #
# --------------------------------------------------------------------------- #
def build_receivers(
    allocation: OfdmAllocation,
    names: tuple[str, ...] = ("standard", "cprecycle"),
    n_segments: int | None = None,
) -> dict[str, OfdmReceiverBase]:
    """Construct the receivers used in an experiment.

    ``names`` resolve through the receiver plugin registry
    (:mod:`repro.api.registry`; builtins: ``standard``, ``naive``,
    ``oracle``, ``cprecycle``).  Every multi-segment receiver uses all
    ISI-free cyclic prefix samples (or ``n_segments`` when given).
    """
    # Imported lazily: repro.api builds on this module's profile/scenario
    # definitions, so a top-level import would be circular.
    from repro.api.registry import build_receiver
    from repro.api.specs import ReceiverSpec

    return {
        name: build_receiver(ReceiverSpec(name=name, n_segments=n_segments), allocation)
        for name in names
    }
