"""Figure 8 — packet success rate vs SIR, single adjacent-channel interferer.

Three MCS modes (QPSK 1/2, 16-QAM 1/2, 64-QAM 2/3), each decoded with and
without CPRecycle.  The paper's headline ACI result: CPRecycle moves every
curve's cliff to substantially lower SIR, enabling communication in regimes
where the standard receiver loses every packet.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET, aci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import psr_vs_sir, sir_axis

__all__ = ["run", "main"]


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-32.0, -8.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with one adjacent-channel interferer."""
    profile = profile or default_profile()
    sir_values = sir_axis(sir_range_db[0], sir_range_db[1], profile.n_sir_points)
    return psr_vs_sir(
        figure="Figure 8",
        title="PSR vs SIR, single adjacent-channel interferer",
        # partial of a module-level function: picklable, so sweep points can
        # run on pool workers.
        scenario_factory=partial(aci_scenario, payload_length=profile.payload_length),
        mcs_names=mcs_names,
        sir_values_db=sir_values,
        profile=profile,
        notes=["interferer on the adjacent subcarrier block, 4-subcarrier guard band"],
        n_workers=n_workers,
    )


def main() -> None:
    """Print Figure 8."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
