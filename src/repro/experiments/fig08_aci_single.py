"""Figure 8 — packet success rate vs SIR, single adjacent-channel interferer.

Three MCS modes (QPSK 1/2, 16-QAM 1/2, 64-QAM 2/3), each decoded with and
without CPRecycle.  The paper's headline ACI result: CPRecycle moves every
curve's cliff to substantially lower SIR, enabling communication in regimes
where the standard receiver loses every packet.

The figure is one declarative :class:`~repro.api.ExperimentSpec` (``SPEC``)
run through the :func:`~repro.api.run_experiment_spec` facade — dump it with
``cprecycle-experiments fig8 --dump-spec`` as a starting point for custom
scenarios.
"""

from __future__ import annotations

from repro.api import (
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_experiment_spec,
)
from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET
from repro.experiments.results import FigureResult

__all__ = ["SPEC", "build_spec", "run", "main"]


def build_spec(
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-32.0, -8.0),
) -> ExperimentSpec:
    """The canonical Figure 8 spec (optionally with a custom MCS/SIR grid)."""
    return ExperimentSpec(
        name="fig8",
        figure="Figure 8",
        title="PSR vs SIR, single adjacent-channel interferer",
        scenario=ScenarioSpec(interferers=(InterfererSpec(kind="aci"),)),
        receivers=(ReceiverSpec("standard"), ReceiverSpec("cprecycle")),
        sweep=SweepSpec(
            axes=(
                SweepAxis("mcs_name", values=tuple(mcs_names)),
                SweepAxis("sir_db", span=sir_range_db),
            )
        ),
        series_label="{mcs} {receiver}",
        notes=("interferer on the adjacent subcarrier block, 4-subcarrier guard band",),
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-32.0, -8.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with one adjacent-channel interferer."""
    return run_experiment_spec(build_spec(mcs_names, sir_range_db), profile, n_workers=n_workers)


def main() -> None:
    """Print Figure 8."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
