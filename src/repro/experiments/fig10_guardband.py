"""Figure 10 — guard band needed next to a legacy OFDM transmitter.

Packet success rate versus guard-band width for 16-QAM at SIR -10/-20/-30 dB,
with and without CPRecycle.  The paper's spectrum-efficiency argument: with
CPRecycle a cognitive user can be packed much closer to a strong incumbent
for the same packet success rate.

The (SIR x guard-band) grid runs as independent sweep points through the
shared execution layer, so ``--workers``/``--engine`` and the persistent
point cache apply exactly as in the SIR-sweep figures.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.config import ExperimentProfile, aci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import SweepPoint, execute_points, run_sweep_point
from repro.phy.subcarriers import DOT11G_SUBCARRIER_SPACING_HZ

__all__ = ["run", "main", "GUARD_BAND_SUBCARRIERS"]

#: Guard-band sweep in subcarriers (0 to 30 MHz at 312.5 kHz spacing).
GUARD_BAND_SUBCARRIERS: tuple[int, ...] = (0, 16, 32, 64, 96)

MCS_NAME = "16qam-1/2"
RECEIVER_NAMES = ("standard", "cprecycle")


def run(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """Packet success rate vs guard band, with and without CPRecycle."""
    profile = profile or default_profile()
    guard_mhz = [round(g * DOT11G_SUBCARRIER_SPACING_HZ / 1e6, 3) for g in guard_band_subcarriers]
    points = [
        SweepPoint(
            # partial of a module-level function: picklable, so grid cells
            # can run on pool workers.
            scenario_factory=partial(
                aci_scenario,
                payload_length=profile.payload_length,
                guard_subcarriers=guard,
                two_sided=False,
            ),
            mcs_name=MCS_NAME,
            sir_db=sir_db,
            receiver_names=RECEIVER_NAMES,
            n_packets=profile.n_packets,
            seed=profile.seed,
            engine=engine,
        )
        for sir_db in sir_values_db
        for guard in guard_band_subcarriers
    ]
    outcomes = execute_points(run_sweep_point, points, n_workers=n_workers)

    series: dict[str, list[float]] = {}
    for point, outcome in zip(points, outcomes):
        for name in RECEIVER_NAMES:
            label = (
                f"SIR {point.sir_db:g} dB, "
                + ("With CPRecycle" if name == "cprecycle" else "Without CPRecycle")
            )
            series.setdefault(label, []).append(outcome[name])
    return FigureResult(
        figure="Figure 10",
        title=f"PSR vs guard band with an adjacent legacy transmitter ({MCS_NAME})",
        x_label="Guard band (MHz)",
        x_values=guard_mhz,
        series=series,
    )


def main() -> None:
    """Print Figure 10."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
