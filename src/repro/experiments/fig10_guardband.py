"""Figure 10 — guard band needed next to a legacy OFDM transmitter.

Packet success rate versus guard-band width for 16-QAM at SIR -10/-20/-30 dB,
with and without CPRecycle.  The paper's spectrum-efficiency argument: with
CPRecycle a cognitive user can be packed much closer to a strong incumbent
for the same packet success rate.

The figure is one declarative :class:`~repro.api.ExperimentSpec` (``SPEC``):
the (SIR x guard-band) grid is two sweep axes, the guard axis doubles as the
x-axis (rendered in MHz via ``x_transform``), and every grid cell runs as an
independent sweep point through the shared execution layer, so
``--workers``/``--engine`` and the persistent point cache apply exactly as
in the SIR-sweep figures.
"""

from __future__ import annotations

from repro.api import (
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_experiment_spec,
)
from repro.experiments.config import ExperimentProfile
from repro.experiments.results import FigureResult

__all__ = ["SPEC", "build_spec", "run", "main", "GUARD_BAND_SUBCARRIERS"]

#: Guard-band sweep in subcarriers (0 to 30 MHz at 312.5 kHz spacing).
GUARD_BAND_SUBCARRIERS: tuple[int, ...] = (0, 16, 32, 64, 96)

MCS_NAME = "16qam-1/2"


def build_spec(
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
    engine: str | None = None,
) -> ExperimentSpec:
    """The canonical Figure 10 spec (optionally with a custom grid)."""
    return ExperimentSpec(
        name="fig10",
        figure="Figure 10",
        title=f"PSR vs guard band with an adjacent legacy transmitter ({MCS_NAME})",
        scenario=ScenarioSpec(mcs_name=MCS_NAME, interferers=(InterfererSpec(kind="aci"),)),
        receivers=(ReceiverSpec("standard"), ReceiverSpec("cprecycle")),
        sweep=SweepSpec(
            axes=(
                SweepAxis("sir_db", values=tuple(sir_values_db)),
                SweepAxis("guard_subcarriers", values=tuple(guard_band_subcarriers)),
            )
        ),
        series_label="SIR {sir_db:g} dB, {receiver}",
        x_label="Guard band (MHz)",
        x_transform="guard_mhz",
        engine=engine,
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
    n_workers: int | None = None,
    engine: str | None = None,
) -> FigureResult:
    """Packet success rate vs guard band, with and without CPRecycle."""
    return run_experiment_spec(
        build_spec(sir_values_db, guard_band_subcarriers, engine=engine),
        profile,
        n_workers=n_workers,
    )


def main() -> None:
    """Print Figure 10."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
