"""Figure 10 — guard band needed next to a legacy OFDM transmitter.

Packet success rate versus guard-band width for 16-QAM at SIR -10/-20/-30 dB,
with and without CPRecycle.  The paper's spectrum-efficiency argument: with
CPRecycle a cognitive user can be packed much closer to a strong incumbent
for the same packet success rate.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentProfile, aci_scenario, build_receivers, default_profile
from repro.experiments.link import packet_success_rate
from repro.experiments.results import FigureResult
from repro.phy.subcarriers import DOT11G_SUBCARRIER_SPACING_HZ

__all__ = ["run", "main", "GUARD_BAND_SUBCARRIERS"]

#: Guard-band sweep in subcarriers (0 to 30 MHz at 312.5 kHz spacing).
GUARD_BAND_SUBCARRIERS: tuple[int, ...] = (0, 16, 32, 64, 96)

MCS_NAME = "16qam-1/2"
RECEIVER_NAMES = ("standard", "cprecycle")


def run(
    profile: ExperimentProfile | None = None,
    sir_values_db: tuple[float, ...] = (-10.0, -20.0, -30.0),
    guard_band_subcarriers: tuple[int, ...] = GUARD_BAND_SUBCARRIERS,
) -> FigureResult:
    """Packet success rate vs guard band, with and without CPRecycle."""
    profile = profile or default_profile()
    series: dict[str, list[float]] = {}
    guard_mhz = [round(g * DOT11G_SUBCARRIER_SPACING_HZ / 1e6, 3) for g in guard_band_subcarriers]
    for sir_db in sir_values_db:
        for guard in guard_band_subcarriers:
            scenario = aci_scenario(
                MCS_NAME,
                sir_db=sir_db,
                payload_length=profile.payload_length,
                guard_subcarriers=guard,
                two_sided=False,
            )
            receivers = build_receivers(scenario.allocation, RECEIVER_NAMES)
            stats = packet_success_rate(scenario, receivers, profile.n_packets, seed=profile.seed)
            for name in RECEIVER_NAMES:
                label = (
                    f"SIR {sir_db:g} dB, "
                    + ("With CPRecycle" if name == "cprecycle" else "Without CPRecycle")
                )
                series.setdefault(label, []).append(stats[name].success_percent)
    return FigureResult(
        figure="Figure 10",
        title=f"PSR vs guard band with an adjacent legacy transmitter ({MCS_NAME})",
        x_label="Guard band (MHz)",
        x_values=guard_mhz,
        series=series,
    )


def main() -> None:
    """Print Figure 10."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
