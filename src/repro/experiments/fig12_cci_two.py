"""Figure 12 — packet success rate vs SIR with two co-channel interferers.

Both interferers share the sender's channel and split the interference power
(the spec layer's shared-SIR rule); the number of affected subcarriers does
not grow (unlike the two-interferer ACI case), so the curves change little
relative to Figure 11 — which is exactly the paper's observation.

The figure is one declarative :class:`~repro.api.ExperimentSpec` (``SPEC``)
run through the :func:`~repro.api.run_experiment_spec` facade.
"""

from __future__ import annotations

from repro.api import (
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    run_experiment_spec,
)
from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET
from repro.experiments.results import FigureResult

__all__ = ["SPEC", "build_spec", "run", "main"]


def build_spec(
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-5.0, 25.0),
) -> ExperimentSpec:
    """The canonical Figure 12 spec (optionally with a custom MCS/SIR grid)."""
    return ExperimentSpec(
        name="fig12",
        figure="Figure 12",
        title="PSR vs SIR, two co-channel interferers (802.11g)",
        scenario=ScenarioSpec(
            interferers=(InterfererSpec(kind="cci"), InterfererSpec(kind="cci"))
        ),
        receivers=(ReceiverSpec("standard"), ReceiverSpec("cprecycle")),
        sweep=SweepSpec(
            axes=(
                SweepAxis("mcs_name", values=tuple(mcs_names)),
                SweepAxis("sir_db", span=sir_range_db),
            )
        ),
        series_label="{mcs} {receiver}",
        notes=("two equal-power co-channel interferers; SIR counts their combined power",),
    )


SPEC = build_spec()


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-5.0, 25.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with two co-channel interferers."""
    return run_experiment_spec(build_spec(mcs_names, sir_range_db), profile, n_workers=n_workers)


def main() -> None:
    """Print Figure 12."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
