"""Figure 12 — packet success rate vs SIR with two co-channel interferers.

Both interferers share the sender's channel and split the interference power;
the number of affected subcarriers does not grow (unlike the two-interferer
ACI case), so the curves change little relative to Figure 11 — which is
exactly the paper's observation.
"""

from __future__ import annotations

from functools import partial

from repro.experiments.config import ExperimentProfile, PAPER_MCS_SET, cci_scenario, default_profile
from repro.experiments.results import FigureResult
from repro.experiments.sweeps import psr_vs_sir, sir_axis

__all__ = ["run", "main"]


def run(
    profile: ExperimentProfile | None = None,
    mcs_names: tuple[str, ...] = PAPER_MCS_SET,
    sir_range_db: tuple[float, float] = (-5.0, 25.0),
    n_workers: int | None = None,
) -> FigureResult:
    """Packet success rate vs SIR with two co-channel interferers."""
    profile = profile or default_profile()
    sir_values = sir_axis(sir_range_db[0], sir_range_db[1], profile.n_sir_points)
    return psr_vs_sir(
        figure="Figure 12",
        title="PSR vs SIR, two co-channel interferers (802.11g)",
        scenario_factory=partial(
            cci_scenario, payload_length=profile.payload_length, n_interferers=2
        ),
        mcs_names=mcs_names,
        sir_values_db=sir_values,
        profile=profile,
        notes=["two equal-power co-channel interferers; SIR counts their combined power"],
        n_workers=n_workers,
    )


def main() -> None:
    """Print Figure 12."""
    from repro.experiments.results import format_table

    print(format_table(run()))


if __name__ == "__main__":
    main()
