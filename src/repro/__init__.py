"""CPRecycle reproduction: cyclic-prefix recycling for OFDM interference mitigation.

This package reproduces *CPRecycle: Recycling Cyclic Prefix for Versatile
Interference Mitigation in OFDM based Wireless Systems* (CoNEXT 2016) as a
pure-Python library: an 802.11-style OFDM PHY, channel and interference
simulation, the CPRecycle receiver with its baselines, a network-level
analysis module and an experiment harness regenerating every table and figure
of the paper's evaluation.

Quick start::

    from repro.phy import dot11g_allocation
    from repro.channel import Scenario, co_channel_interferer
    from repro.core import CPRecycleReceiver
    from repro.receiver import StandardOfdmReceiver

    allocation = dot11g_allocation()
    scenario = Scenario(
        allocation, mcs_name="qpsk-1/2", payload_length=100, snr_db=25,
        interferers=[co_channel_interferer(allocation, sir_db=5.0)],
    )
    rx = scenario.realize(seed=0)
    print(StandardOfdmReceiver().receive(rx).success)
    print(CPRecycleReceiver().receive(rx).success)
"""

from repro.channel import (
    Impairments,
    InterfererSpec,
    ReceivedWaveform,
    Scenario,
    adjacent_channel_interferer,
    co_channel_interferer,
)
from repro.core import (
    CPRecycleConfig,
    CPRecycleReceiver,
    NaiveSegmentReceiver,
    OracleSegmentReceiver,
)
from repro.phy import (
    OfdmAllocation,
    OfdmTransmitter,
    dot11g_allocation,
    get_mcs,
    wideband_allocation,
)
from repro.receiver import FrontEnd, StandardOfdmReceiver

__version__ = "1.0.0"

__all__ = [
    "CPRecycleConfig",
    "CPRecycleReceiver",
    "FrontEnd",
    "Impairments",
    "InterfererSpec",
    "NaiveSegmentReceiver",
    "OfdmAllocation",
    "OfdmTransmitter",
    "OracleSegmentReceiver",
    "ReceivedWaveform",
    "Scenario",
    "StandardOfdmReceiver",
    "adjacent_channel_interferer",
    "co_channel_interferer",
    "dot11g_allocation",
    "get_mcs",
    "wideband_allocation",
    "__version__",
]
