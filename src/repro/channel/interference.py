"""Interference source modelling.

An interferer is another OFDM transmitter that keeps sending back-to-back
symbols while the sender's frame is on the air.  Two configurations cover the
paper's evaluation scenarios:

* **Adjacent-channel interference (ACI)** — the interferer occupies a block of
  subcarriers next to the sender's block (optionally separated by a guard
  band) on the same wideband grid, and its symbol clock is offset by more
  than the cyclic prefix.  Because its symbol boundaries fall inside the
  receiver's FFT window, its energy leaks across the whole band; how much
  leaks into each of the sender's subcarriers depends strongly on which FFT
  segment the receiver uses — the effect CPRecycle exploits.
* **Co-channel interference (CCI)** — the interferer occupies the *same*
  subcarriers as the sender (a hidden terminal or a femtocell in the paper's
  discussion), again with an arbitrary symbol-clock offset.

The interferer's transmit power is calibrated from a target SIR measured at
the receiver against the post-channel desired-signal power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.multipath import ChannelModel, FlatChannel, apply_channel
from repro.phy.subcarriers import OfdmAllocation, adjacent_block_allocation
from repro.phy.transmitter import OfdmTransmitter
from repro.utils.dsp import db_to_linear, signal_power
from repro.utils.rng import ensure_rng

__all__ = [
    "InterfererSpec",
    "RealizedInterference",
    "adjacent_channel_interferer",
    "co_channel_interferer",
    "realize_interference",
]


@dataclass(frozen=True)
class InterfererSpec:
    """Configuration of one interfering transmitter.

    Attributes
    ----------
    allocation:
        The interferer's subcarrier allocation on the common grid.  It must
        share the grid size and sample rate of the sender's allocation.
    sir_db:
        Signal-to-interference ratio at the receiver contributed by this
        interferer alone: desired-signal power divided by this interferer's
        power, in dB.  Negative values mean the interference is stronger than
        the signal (the paper sweeps down to -40 dB).
    mcs_name:
        Modulation/coding the interferer uses for its own traffic (affects
        only the statistics of the interfering constellation).
    timing_offset:
        Offset, in samples, of the interferer's symbol boundaries relative to
        the sender's.  ``None`` draws a uniform offset larger than the cyclic
        prefix, reproducing the paper's "temporal offset greater than the CP"
        setup.  An offset of 0 makes the interferer symbol-aligned (and hence
        orthogonal for ACI) — useful as an ablation.
    channel:
        Propagation channel between the interferer and the receiver.
    edge_window_length:
        Raised-cosine taper length (samples) applied to the interferer's
        symbol transitions.  0 models a raw rectangular-edged baseband (worst
        case splatter); a few samples model the spectral shaping present in
        real transmit chains.
    label:
        Name used in reports.
    """

    allocation: OfdmAllocation
    sir_db: float
    mcs_name: str = "qpsk-1/2"
    timing_offset: int | None = None
    channel: ChannelModel = field(default_factory=FlatChannel)
    edge_window_length: int = 0
    label: str = "interferer"


@dataclass(frozen=True)
class RealizedInterference:
    """One realisation of an interferer over a receive buffer."""

    spec: InterfererSpec
    component: np.ndarray = field(repr=False)
    timing_offset: int
    channel_taps: np.ndarray = field(repr=False)

    @property
    def power(self) -> float:
        """Mean power of the interference component."""
        return signal_power(self.component)


# --------------------------------------------------------------------------- #
# Convenience constructors for the two paper scenarios                        #
# --------------------------------------------------------------------------- #
def adjacent_channel_interferer(
    sender: OfdmAllocation,
    sir_db: float,
    guard_subcarriers: int = 4,
    n_subcarriers: int = 64,
    side: str = "upper",
    mcs_name: str = "qpsk-1/2",
    timing_offset: int | None = None,
    channel: ChannelModel | None = None,
    edge_window_length: int = 0,
    label: str | None = None,
) -> InterfererSpec:
    """An interferer on the adjacent block of subcarriers.

    ``side`` selects whether the block sits above ("upper") or below ("lower")
    the sender's allocation; ``guard_subcarriers`` empty bins separate the two
    blocks (the paper's guard band, swept in Fig. 5 and Fig. 10).
    """
    if guard_subcarriers < 0:
        raise ValueError("guard_subcarriers must be non-negative")
    occupied = sender.occupied_bin_array()
    if side == "upper":
        start = int(occupied.max()) + 1 + guard_subcarriers
    elif side == "lower":
        start = int(occupied.min()) - guard_subcarriers - n_subcarriers
        if start < 0:
            raise ValueError(
                "the lower adjacent block does not fit below the sender's allocation; "
                "use a wider grid or a smaller guard band"
            )
    else:
        raise ValueError(f"side must be 'upper' or 'lower', got {side!r}")
    allocation = adjacent_block_allocation(
        fft_size=sender.fft_size,
        cp_length=sender.cp_length,
        start_bin=start,
        n_subcarriers=n_subcarriers,
        n_pilots=0,
        name=f"aci-{side}",
        subcarrier_spacing_hz=sender.subcarrier_spacing_hz,
    )
    return InterfererSpec(
        allocation=allocation,
        sir_db=sir_db,
        mcs_name=mcs_name,
        timing_offset=timing_offset,
        channel=channel if channel is not None else FlatChannel(),
        edge_window_length=edge_window_length,
        label=label or f"aci-{side}",
    )


def co_channel_interferer(
    sender: OfdmAllocation,
    sir_db: float,
    mcs_name: str = "qpsk-1/2",
    timing_offset: int | None = None,
    channel: ChannelModel | None = None,
    edge_window_length: int = 0,
    label: str = "cci",
) -> InterfererSpec:
    """An interferer occupying the same subcarriers as the sender."""
    return InterfererSpec(
        allocation=sender,
        sir_db=sir_db,
        mcs_name=mcs_name,
        timing_offset=timing_offset,
        channel=channel if channel is not None else FlatChannel(),
        edge_window_length=edge_window_length,
        label=label,
    )


# --------------------------------------------------------------------------- #
# Realisation                                                                 #
# --------------------------------------------------------------------------- #
def realize_interference(
    spec: InterfererSpec,
    n_samples: int,
    reference_power: float,
    frame_start: int,
    rng: int | np.random.Generator | None = None,
) -> RealizedInterference:
    """Generate the interference component over a receive buffer.

    Parameters
    ----------
    n_samples:
        Length of the receive buffer the interference must cover.
    reference_power:
        Mean power of the (post-channel) desired signal; the component is
        scaled so the resulting per-interferer SIR equals ``spec.sir_db``.
    frame_start:
        Buffer index of the sender's frame start; the timing offset is defined
        relative to the sender's symbol boundaries.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if reference_power <= 0:
        raise ValueError("reference_power must be positive")
    rng = ensure_rng(rng)
    allocation = spec.allocation
    symbol_length = allocation.symbol_length

    offset = spec.timing_offset
    if offset is None:
        # "Temporal offset greater than the duration of the cyclic prefix."
        offset = int(rng.integers(allocation.cp_length + 1, allocation.fft_size))
    offset = int(offset) % symbol_length

    transmitter = OfdmTransmitter(
        allocation, mcs_name=spec.mcs_name, edge_window_length=spec.edge_window_length
    )
    n_symbols = int(np.ceil(n_samples / symbol_length)) + 3
    stream = transmitter.symbol_stream(n_symbols, rng)

    taps = spec.channel.sample_taps(rng)
    stream = apply_channel(stream, taps)

    # Slice the continuous stream so that its symbol boundaries land at buffer
    # indices congruent to (frame_start + offset) modulo the symbol length.
    start_in_stream = (symbol_length - (frame_start + offset) % symbol_length) % symbol_length
    component = stream[start_in_stream : start_in_stream + n_samples]
    if component.size < n_samples:  # pragma: no cover - defensive, stream is oversized
        component = np.pad(component, (0, n_samples - component.size))

    target_power = reference_power / db_to_linear(spec.sir_db)
    component = component * np.sqrt(target_power / signal_power(component))
    return RealizedInterference(
        spec=spec, component=component, timing_offset=offset, channel_taps=taps
    )
