"""Radio front-end impairments.

These model the transmitter/receiver non-idealities the paper mentions as
sources of decoding error beyond interference: carrier frequency offset,
oscillator phase noise and (for completeness) IQ imbalance.  They are applied
to time-domain waveforms and are disabled by default in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.dsp import frequency_shift
from repro.utils.rng import ensure_rng

__all__ = ["Impairments", "apply_cfo", "apply_phase_noise", "apply_iq_imbalance"]


def apply_cfo(waveform: np.ndarray, cfo_hz: float, sample_rate_hz: float) -> np.ndarray:
    """Apply a carrier frequency offset of ``cfo_hz``."""
    if cfo_hz == 0:
        return np.asarray(waveform).copy()
    return frequency_shift(waveform, cfo_hz, sample_rate_hz)


def apply_phase_noise(
    waveform: np.ndarray,
    linewidth_hz: float,
    sample_rate_hz: float,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Apply Wiener (random-walk) phase noise with the given 3 dB linewidth."""
    waveform = np.asarray(waveform)
    if linewidth_hz == 0:
        return waveform.copy()
    if linewidth_hz < 0:
        raise ValueError("linewidth_hz must be non-negative")
    rng = ensure_rng(rng)
    variance_per_sample = 2.0 * np.pi * linewidth_hz / sample_rate_hz
    increments = rng.normal(0.0, np.sqrt(variance_per_sample), size=waveform.size)
    phase = np.cumsum(increments)
    return waveform * np.exp(1j * phase)


def apply_iq_imbalance(
    waveform: np.ndarray, amplitude_imbalance_db: float = 0.0, phase_imbalance_deg: float = 0.0
) -> np.ndarray:
    """Apply transmitter IQ gain/phase imbalance."""
    waveform = np.asarray(waveform)
    if amplitude_imbalance_db == 0.0 and phase_imbalance_deg == 0.0:
        return waveform.copy()
    g = 10.0 ** (amplitude_imbalance_db / 20.0)
    phi = np.deg2rad(phase_imbalance_deg)
    alpha = 0.5 * (1.0 + g * np.exp(1j * phi))
    beta = 0.5 * (1.0 - g * np.exp(1j * phi))
    return alpha * waveform + beta * np.conj(waveform)


@dataclass(frozen=True)
class Impairments:
    """A bundle of front-end impairments applied to one transmitter's signal."""

    cfo_hz: float = 0.0
    phase_noise_linewidth_hz: float = 0.0
    iq_amplitude_imbalance_db: float = 0.0
    iq_phase_imbalance_deg: float = 0.0

    def apply(
        self,
        waveform: np.ndarray,
        sample_rate_hz: float,
        rng: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Apply all configured impairments to a waveform."""
        out = apply_iq_imbalance(
            waveform, self.iq_amplitude_imbalance_db, self.iq_phase_imbalance_deg
        )
        out = apply_cfo(out, self.cfo_hz, sample_rate_hz)
        out = apply_phase_noise(out, self.phase_noise_linewidth_hz, sample_rate_hz, rng)
        return out

    @property
    def is_ideal(self) -> bool:
        """True when no impairment is configured."""
        return (
            self.cfo_hz == 0.0
            and self.phase_noise_linewidth_hz == 0.0
            and self.iq_amplitude_imbalance_db == 0.0
            and self.iq_phase_imbalance_deg == 0.0
        )
