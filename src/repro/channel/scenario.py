"""Scenario composition: sender + channel + interferers + noise.

A :class:`Scenario` describes one link-level experiment point (allocation,
MCS, SNR, interferer set).  Each call to :meth:`Scenario.realize` draws a new
packet, channel, interference and noise realisation and returns a
:class:`ReceivedWaveform` containing both the composite samples a real
receiver would see and the individual components (genie information used by
the Oracle baseline and by the interference-analysis figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.awgn import complex_awgn
from repro.channel.impairments import Impairments
from repro.channel.interference import InterfererSpec, RealizedInterference, realize_interference
from repro.channel.multipath import ChannelModel, FlatChannel, apply_channel
from repro.phy.frame import FrameSpec
from repro.phy.subcarriers import OfdmAllocation
from repro.phy.transmitter import OfdmTransmitter, TxFrame
from repro.utils.dsp import db_to_linear, signal_power
from repro.utils.rng import child_rng, ensure_rng

__all__ = ["Scenario", "ReceivedWaveform"]


@dataclass(frozen=True)
class ReceivedWaveform:
    """Everything the channel hands to a receiver for one packet.

    ``composite`` is what a real receiver observes.  The remaining fields are
    genie information: they are consumed only by oracle baselines, by the
    interference-analysis experiments (Fig. 4) and by tests.
    """

    composite: np.ndarray = field(repr=False)
    signal: np.ndarray = field(repr=False)
    interference: np.ndarray = field(repr=False)
    noise: np.ndarray = field(repr=False)
    frame_start: int
    tx_frame: TxFrame
    channel_taps: np.ndarray = field(repr=False)
    interferers: tuple[RealizedInterference, ...] = ()

    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> FrameSpec:
        """Frame format of the desired transmission."""
        return self.tx_frame.spec

    @property
    def allocation(self) -> OfdmAllocation:
        """Subcarrier allocation of the desired transmission."""
        return self.spec.allocation

    @property
    def preamble_start(self) -> int:
        """Buffer index of the first training symbol."""
        return self.frame_start + self.spec.preamble_start

    @property
    def data_start(self) -> int:
        """Buffer index of the first data symbol."""
        return self.frame_start + self.spec.data_start

    @property
    def channel_delay_samples(self) -> int:
        """Excess delay of the desired channel in samples (taps - 1)."""
        return int(self.channel_taps.size) - 1

    @property
    def isi_free_cp_samples(self) -> int:
        """Genie count of ISI-free cyclic prefix samples (the paper's P)."""
        return max(self.allocation.cp_length - self.channel_delay_samples, 1)

    def _frame_slice(self) -> slice:
        return slice(self.frame_start, self.frame_start + self.spec.n_samples)

    @property
    def snr_db(self) -> float:
        """Realised signal-to-noise ratio over the frame extent."""
        window = self._frame_slice()
        return 10.0 * np.log10(
            signal_power(self.signal[window]) / signal_power(self.noise[window])
        )

    @property
    def sir_db(self) -> float:
        """Realised signal-to-total-interference ratio over the frame extent."""
        window = self._frame_slice()
        interference_power = signal_power(self.interference[window])
        if interference_power == 0:
            return float("inf")
        return 10.0 * np.log10(signal_power(self.signal[window]) / interference_power)

    def interference_plus_noise(self) -> np.ndarray:
        """The composite minus the desired signal (for oracle analyses)."""
        return self.interference + self.noise


class Scenario:
    """A repeatable link-level scenario.

    Parameters
    ----------
    allocation:
        Sender subcarrier allocation.
    mcs_name:
        Sender modulation and coding scheme.
    payload_length:
        MAC payload size in bytes (the paper uses 400-byte packets).
    snr_db:
        Signal-to-noise ratio at the receiver.
    interferers:
        Zero or more :class:`InterfererSpec`.
    channel:
        Propagation channel of the desired link.
    impairments:
        Optional front-end impairments applied to the desired signal.
    n_preamble_symbols:
        Number of training symbols (the paper's ``Np``).
    pad_symbols:
        Idle symbol durations inserted before and after the frame (gives sync
        algorithms room and lets interference cover the whole frame).
    include_stf:
        Prepend a short training field (only needed for real packet detection).
    """

    def __init__(
        self,
        allocation: OfdmAllocation,
        mcs_name: str = "qpsk-1/2",
        payload_length: int = 100,
        snr_db: float = 30.0,
        interferers: tuple[InterfererSpec, ...] | list[InterfererSpec] = (),
        channel: ChannelModel | None = None,
        impairments: Impairments | None = None,
        n_preamble_symbols: int = 2,
        pad_symbols: int = 2,
        include_stf: bool = False,
    ):
        self.allocation = allocation
        self.mcs_name = mcs_name
        self.payload_length = payload_length
        self.snr_db = snr_db
        self.interferers = tuple(interferers)
        self.channel = channel if channel is not None else FlatChannel()
        self.impairments = impairments if impairments is not None else Impairments()
        self.n_preamble_symbols = n_preamble_symbols
        self.pad_symbols = pad_symbols
        self.include_stf = include_stf
        self._transmitter = OfdmTransmitter(
            allocation,
            mcs_name=mcs_name,
            n_preamble_symbols=n_preamble_symbols,
            include_stf=include_stf,
        )

    # ------------------------------------------------------------------ #
    @property
    def frame_spec(self) -> FrameSpec:
        """Frame format produced by this scenario."""
        return self._transmitter.frame_spec(self.payload_length)

    def realize_batch(
        self, n_packets: int, seed: int = 0, first_index: int = 0
    ) -> list[ReceivedWaveform]:
        """Draw ``n_packets`` independent realisations with per-packet RNGs.

        Packet ``i`` uses the child stream ``child_rng(seed, first_index + i)``
        — the same derivation the link engine has always used per packet, so a
        batch realisation is sample-for-sample identical to ``n_packets``
        sequential :meth:`realize` calls, and any packet can be re-drawn in
        isolation.  ``first_index`` lets workers realise disjoint slices of
        one experiment's packet sequence.
        """
        if n_packets < 1:
            raise ValueError("n_packets must be at least 1")
        if first_index < 0:
            raise ValueError("first_index must be non-negative")
        return [
            self.realize(child_rng(seed, first_index + index)) for index in range(n_packets)
        ]

    def realize(self, rng: int | np.random.Generator | None = None) -> ReceivedWaveform:
        """Draw one packet, channel, interference and noise realisation."""
        rng = ensure_rng(rng)
        frame = self._transmitter.random_frame(self.payload_length, rng)

        taps = self.channel.sample_taps(rng)
        faded = apply_channel(frame.waveform, taps)
        if not self.impairments.is_ideal:
            faded = self.impairments.apply(faded, self.allocation.sample_rate_hz, rng)

        pad = self.pad_symbols * self.allocation.symbol_length
        n_samples = pad + faded.size + pad
        frame_start = pad

        signal = np.zeros(n_samples, dtype=complex)
        signal[frame_start : frame_start + faded.size] = faded
        reference_power = signal_power(faded)

        realized: list[RealizedInterference] = []
        interference = np.zeros(n_samples, dtype=complex)
        for index, spec in enumerate(self.interferers):
            component = realize_interference(
                spec,
                n_samples=n_samples,
                reference_power=reference_power,
                frame_start=frame_start,
                rng=rng,
            )
            interference += component.component
            realized.append(component)

        noise_power = reference_power / db_to_linear(self.snr_db)
        noise = complex_awgn(n_samples, noise_power, rng)

        composite = signal + interference + noise
        return ReceivedWaveform(
            composite=composite,
            signal=signal,
            interference=interference,
            noise=noise,
            frame_start=frame_start,
            tx_frame=frame,
            channel_taps=taps,
            interferers=tuple(realized),
        )
