"""Additive white Gaussian noise generation and SNR calibration."""

from __future__ import annotations

import numpy as np

from repro.utils.dsp import db_to_linear, signal_power
from repro.utils.rng import ensure_rng

__all__ = ["complex_awgn", "awgn_for_snr", "add_awgn"]


def complex_awgn(
    n_samples: int, power: float, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Circularly-symmetric complex Gaussian noise with the given mean power."""
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    if power < 0:
        raise ValueError("power must be non-negative")
    rng = ensure_rng(rng)
    scale = np.sqrt(power / 2.0)
    return scale * (rng.standard_normal(n_samples) + 1j * rng.standard_normal(n_samples))


def awgn_for_snr(
    reference: np.ndarray, snr_db: float, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Noise vector sized and scaled so that ``power(reference)/power(noise) = snr_db``."""
    reference = np.asarray(reference)
    noise_power = signal_power(reference) / db_to_linear(snr_db)
    return complex_awgn(reference.size, noise_power, rng)


def add_awgn(
    signal: np.ndarray, snr_db: float, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Return ``signal`` plus AWGN at the requested SNR."""
    return np.asarray(signal) + awgn_for_snr(signal, snr_db, rng)
