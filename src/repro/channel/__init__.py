"""Channel substrate: noise, multipath, impairments, interference, scenarios."""

from repro.channel.awgn import add_awgn, awgn_for_snr, complex_awgn
from repro.channel.impairments import Impairments
from repro.channel.interference import (
    InterfererSpec,
    RealizedInterference,
    adjacent_channel_interferer,
    co_channel_interferer,
    realize_interference,
)
from repro.channel.multipath import (
    ChannelModel,
    ExponentialMultipathChannel,
    FlatChannel,
    StaticTapChannel,
    apply_channel,
    rms_delay_spread,
)
from repro.channel.scenario import ReceivedWaveform, Scenario

__all__ = [
    "ChannelModel",
    "ExponentialMultipathChannel",
    "FlatChannel",
    "Impairments",
    "InterfererSpec",
    "RealizedInterference",
    "ReceivedWaveform",
    "Scenario",
    "StaticTapChannel",
    "add_awgn",
    "adjacent_channel_interferer",
    "apply_channel",
    "awgn_for_snr",
    "co_channel_interferer",
    "complex_awgn",
    "realize_interference",
    "rms_delay_spread",
]
