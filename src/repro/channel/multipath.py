"""Multipath channel models.

Indoor propagation measurements (paper section 2.2 and its references) show
delay spreads of tens to a few hundred nanoseconds — far below the 0.8 us
cyclic prefix of 802.11 — which is exactly the over-provisioning CPRecycle
recycles.  The models here generate tapped-delay-line impulse responses with
an exponentially decaying power delay profile and Rayleigh (or Rician
first-tap) fading, normalised to unit energy so that SNR/SIR calibration is
unaffected by the channel draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = [
    "ChannelModel",
    "FlatChannel",
    "ExponentialMultipathChannel",
    "StaticTapChannel",
    "apply_channel",
    "rms_delay_spread",
]


def apply_channel(waveform: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Convolve a waveform with a channel impulse response (full tail kept)."""
    waveform = np.asarray(waveform, dtype=complex)
    taps = np.asarray(taps, dtype=complex)
    if taps.size == 0:
        raise ValueError("channel taps must contain at least one tap")
    return np.convolve(waveform, taps)


def rms_delay_spread(taps: np.ndarray, sample_rate_hz: float) -> float:
    """RMS delay spread (seconds) of an impulse response."""
    taps = np.asarray(taps)
    power = np.abs(taps) ** 2
    total = power.sum()
    if total == 0:
        raise ValueError("channel taps carry no energy")
    delays = np.arange(taps.size) / sample_rate_hz
    mean_delay = (power * delays).sum() / total
    return float(np.sqrt((power * (delays - mean_delay) ** 2).sum() / total))


class ChannelModel:
    """Base class: a channel model draws an impulse response per realisation."""

    #: Number of taps of the generated impulse responses (excess delay + 1).
    max_taps: int = 1

    def sample_taps(self, rng: int | np.random.Generator | None = None) -> np.ndarray:
        """Draw one impulse response (unit energy)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FlatChannel(ChannelModel):
    """A single-tap channel: optional fixed gain and phase, no delay spread."""

    gain: complex = 1.0 + 0.0j

    @property
    def max_taps(self) -> int:  # type: ignore[override]
        return 1

    def sample_taps(self, rng: int | np.random.Generator | None = None) -> np.ndarray:
        return np.array([self.gain], dtype=complex)


@dataclass(frozen=True)
class StaticTapChannel(ChannelModel):
    """A channel with caller-provided static taps (normalised to unit energy)."""

    taps: tuple[complex, ...]

    @property
    def max_taps(self) -> int:  # type: ignore[override]
        return len(self.taps)

    def sample_taps(self, rng: int | np.random.Generator | None = None) -> np.ndarray:
        taps = np.asarray(self.taps, dtype=complex)
        energy = np.sum(np.abs(taps) ** 2)
        if energy == 0:
            raise ValueError("static taps carry no energy")
        return taps / np.sqrt(energy)


@dataclass(frozen=True)
class ExponentialMultipathChannel(ChannelModel):
    """Rayleigh tapped-delay-line channel with exponential power delay profile.

    Parameters
    ----------
    delay_spread_s:
        RMS delay spread of the exponential profile (e.g. 50e-9 for a typical
        office).  The number of taps covers roughly five delay spreads.
    sample_rate_hz:
        Sample rate at which the impulse response is realised.
    rician_k_db:
        Rician K-factor of the first tap; ``None`` gives pure Rayleigh taps.
    """

    delay_spread_s: float
    sample_rate_hz: float
    rician_k_db: float | None = None

    def __post_init__(self) -> None:
        if self.delay_spread_s < 0:
            raise ValueError("delay_spread_s must be non-negative")
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be positive")

    @property
    def n_taps(self) -> int:
        """Number of taps of the realised impulse responses."""
        if self.delay_spread_s == 0:
            return 1
        spread_samples = self.delay_spread_s * self.sample_rate_hz
        return max(1, int(np.ceil(5.0 * spread_samples)) + 1)

    @property
    def max_taps(self) -> int:  # type: ignore[override]
        return self.n_taps

    def sample_taps(self, rng: int | np.random.Generator | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        n_taps = self.n_taps
        if n_taps == 1:
            profile = np.array([1.0])
        else:
            spread_samples = self.delay_spread_s * self.sample_rate_hz
            delays = np.arange(n_taps)
            profile = np.exp(-delays / spread_samples)
            profile /= profile.sum()
        taps = np.sqrt(profile / 2.0) * (
            rng.standard_normal(n_taps) + 1j * rng.standard_normal(n_taps)
        )
        if self.rician_k_db is not None:
            k = 10.0 ** (self.rician_k_db / 10.0)
            los = np.sqrt(k / (k + 1.0) * profile[0])
            taps[0] = los + taps[0] / np.sqrt(k + 1.0)
        energy = np.sum(np.abs(taps) ** 2)
        return taps / np.sqrt(energy)
