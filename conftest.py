"""Make the in-tree package importable when it has not been pip-installed.

Offline evaluation environments sometimes lack the ``wheel`` package that
``pip install -e .`` needs; inserting ``src/`` on ``sys.path`` lets
``pytest`` run either way.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
