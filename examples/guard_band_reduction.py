"""Guard-band reduction for spectrum sharing (cognitive-radio scenario).

A secondary user is allocated a block of subcarriers next to a much stronger
legacy transmitter.  The example sweeps the guard band between the two blocks
and reports the packet success rate with and without CPRecycle — showing how
much closer to the incumbent the secondary user can operate (Figure 10's
argument).
"""

from __future__ import annotations

from repro.experiments import build_receivers, packet_success_rate
from repro.experiments.config import aci_scenario
from repro.phy.subcarriers import DOT11G_SUBCARRIER_SPACING_HZ

GUARD_SUBCARRIERS = (0, 8, 16, 32, 64)
SIR_DB = -20.0  # the incumbent is 100x stronger
N_PACKETS = 8


def main() -> None:
    print(f"Secondary user next to a legacy transmitter ({-SIR_DB:.0f} dB stronger), 16-QAM 1/2")
    print(f"{'guard band':>12} | {'without CPRecycle':>18} {'with CPRecycle':>15}")
    print("-" * 52)
    for guard in GUARD_SUBCARRIERS:
        scenario = aci_scenario(
            "16qam-1/2", sir_db=SIR_DB, payload_length=60, guard_subcarriers=guard
        )
        receivers = build_receivers(scenario.allocation, ("standard", "cprecycle"))
        stats = packet_success_rate(scenario, receivers, N_PACKETS, seed=11)
        guard_mhz = guard * DOT11G_SUBCARRIER_SPACING_HZ / 1e6
        print(f"{guard_mhz:9.2f} MHz | {stats['standard'].success_percent:17.0f}% "
              f"{stats['cprecycle'].success_percent:14.0f}%")
    print("\nA sharper effective spectrum mask at the receiver means the same packet")
    print("success rate is reached with a much narrower guard band, freeing spectrum.")


if __name__ == "__main__":
    main()
