"""Quickstart: decode one interfered packet with and without CPRecycle.

Builds an 802.11g-style frame, passes it through a channel with a strong
co-channel interferer, and decodes it with the standard OFDM receiver and
with CPRecycle.  Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro.channel import Scenario, co_channel_interferer
from repro.core import CPRecycleReceiver
from repro.phy import dot11g_allocation
from repro.receiver import StandardOfdmReceiver


def main() -> None:
    allocation = dot11g_allocation()
    scenario = Scenario(
        allocation,
        mcs_name="qpsk-1/2",
        payload_length=100,
        snr_db=25.0,
        interferers=[co_channel_interferer(allocation, sir_db=6.0)],
    )

    standard = StandardOfdmReceiver()
    cprecycle = CPRecycleReceiver()

    print("Decoding 10 packets at 6 dB SIR (co-channel interferer, QPSK 1/2)...")
    standard_ok = cprecycle_ok = 0
    for seed in range(10):
        rx = scenario.realize(seed)
        standard_ok += standard.receive(rx).success
        cprecycle_ok += cprecycle.receive(rx).success
    print(f"  standard OFDM receiver : {standard_ok}/10 packets decoded")
    print(f"  CPRecycle receiver     : {cprecycle_ok}/10 packets decoded")

    rx = scenario.realize(0)
    print("\nPer-packet details for the first packet:")
    print(f"  realised SNR: {rx.snr_db:5.1f} dB, realised SIR: {rx.sir_db:5.1f} dB")
    print(f"  ISI-free cyclic prefix samples (P): {rx.isi_free_cp_samples}")
    out = cprecycle.receive(rx)
    print(f"  CPRecycle payload matches transmitted payload: "
          f"{out.payload == rx.tx_frame.payload}")


if __name__ == "__main__":
    main()
