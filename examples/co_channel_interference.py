"""Co-channel interference study (hidden terminals, femtocells).

Sweeps the SIR for an 802.11g link whose channel is shared by a second,
unsynchronised transmitter (carrier sensing disabled), for several MCS
modes — a scaled-down interactive version of Figure 11.
"""

from __future__ import annotations

from repro.experiments import build_receivers, packet_success_rate
from repro.experiments.config import cci_scenario

SIR_VALUES_DB = (15.0, 10.0, 5.0, 0.0)
MCS_MODES = ("qpsk-1/2", "16qam-1/2", "64qam-2/3")
N_PACKETS = 6


def main() -> None:
    print("Co-channel interference on an 802.11g link (single interferer)")
    for mcs in MCS_MODES:
        print(f"\nMCS {mcs}")
        print(f"{'SIR (dB)':>9} | {'without CPRecycle':>18} {'with CPRecycle':>15}")
        print("-" * 48)
        for sir_db in SIR_VALUES_DB:
            scenario = cci_scenario(mcs, sir_db=sir_db, payload_length=60)
            receivers = build_receivers(scenario.allocation, ("standard", "cprecycle"))
            stats = packet_success_rate(scenario, receivers, N_PACKETS, seed=7)
            print(f"{sir_db:9.1f} | {stats['standard'].success_percent:17.0f}% "
                  f"{stats['cprecycle'].success_percent:14.0f}%")
    print("\nThe extra interference CPRecycle tolerates translates directly into a")
    print("higher energy-detection threshold and fewer interfering neighbours")
    print("(see examples/network_capacity.py).")


if __name__ == "__main__":
    main()
