"""Anatomy of the CPRecycle receiver on a single packet.

Walks through the stages of Algorithm 1 explicitly — segment extraction,
interference-model training, fixed-sphere ML decoding — and prints what each
stage sees, which is useful both for understanding the algorithm and for
debugging configuration changes.
"""

from __future__ import annotations

import numpy as np

from repro.channel import Scenario, adjacent_channel_interferer
from repro.core import CPRecycleConfig, FixedSphereMlDecoder, InterferenceModel
from repro.phy import wideband_allocation
from repro.receiver import FrontEnd
from repro.receiver.decode_chain import decode_coded_bits

SIR_DB = -16.0


def main() -> None:
    sender = wideband_allocation(fft_size=160, start_bin=1)
    interferer = adjacent_channel_interferer(
        sender, sir_db=SIR_DB, guard_subcarriers=4, edge_window_length=8
    )
    scenario = Scenario(sender, mcs_name="16qam-1/2", payload_length=60, snr_db=28.0,
                        interferers=[interferer])
    rx = scenario.realize(3)
    config = CPRecycleConfig(max_segments=sender.cp_length)

    print(f"Scenario: 16-QAM 1/2, adjacent-channel interferer at {SIR_DB:g} dB SIR")
    print(f"Cyclic prefix: {sender.cp_length} samples; ISI-free (P): {rx.isi_free_cp_samples}")

    # Stage 1: front end — P phase-corrected, equalised FFT segments.
    front = FrontEnd(n_segments=config.n_segments, max_segments=config.max_segments).process(rx)
    print(f"\nStage 1 — front end: {front.n_segments} FFT segments, "
          f"window offsets {front.segment_offsets[0]}..{front.segment_offsets[-1]}")

    # Stage 2: per-subcarrier interference model from the preamble.
    model = InterferenceModel.from_front_end(front, config)
    deviation_scale = np.abs(model.deviations).mean(axis=(1, 2))
    worst = int(np.argmax(deviation_scale))
    print("Stage 2 — interference model:")
    print(f"  {model.n_subcarriers} subcarriers x {model.n_samples} deviation samples each")
    print(f"  most interfered data subcarrier: index {worst} "
          f"(mean deviation amplitude {deviation_scale[worst]:.2f})")
    print(f"  least interfered: index {int(np.argmin(deviation_scale))} "
          f"(mean deviation amplitude {deviation_scale.min():.3f})")

    # Stage 3: fixed-sphere maximum-likelihood decoding.
    decoder = FixedSphereMlDecoder(rx.spec.mcs.constellation, config)
    decisions = decoder.decode_frame(front.data_observations(), model)
    true_indices = rx.spec.mcs.constellation.nearest_indices(rx.tx_frame.data_points)
    ser = float(np.mean(decisions != true_indices))
    print(f"Stage 3 — sphere ML decoding: sphere radius {decoder.sphere_radius:.2f}, "
          f"raw symbol error rate {ser:.3f}")

    # Stage 4: the shared FEC chain.
    coded_bits = rx.spec.mcs.constellation.indices_to_bits(decisions.reshape(-1))
    frame = decode_coded_bits(rx.spec, coded_bits)
    print(f"Stage 4 — FEC decode: CRC {'OK' if frame.crc_ok else 'FAILED'}")


if __name__ == "__main__":
    main()
