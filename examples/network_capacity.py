"""Network-level impact: interfering neighbours in a dense office WLAN.

Reproduces the Figure 13 analysis interactively: a five-floor office with 40
access points, an indoor path-loss model, and the number of interfering
neighbours each AP sees with a standard receiver versus with CPRecycle
(which tolerates ~15 dB more co-channel interference).  Also colours the
resulting conflict graphs as a rough proxy for how many non-conflicting
transmission slots the deployment supports.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.experiments.fig13_network import CPRECYCLE_TOLERANCE_GAIN_DB
from repro.network import (
    DEFAULT_THRESHOLD_DBM,
    OfficeBuilding,
    count_interfering_neighbors,
    interference_graph,
)


def main() -> None:
    building = OfficeBuilding()
    access_points = building.deploy(rng=1)
    rss = building.pairwise_rss_dbm(access_points, rng=1)

    standard_counts = count_interfering_neighbors(rss, DEFAULT_THRESHOLD_DBM)
    cpr_counts = count_interfering_neighbors(
        rss, DEFAULT_THRESHOLD_DBM + CPRECYCLE_TOLERANCE_GAIN_DB
    )

    print(f"Office deployment: {building.n_floors} floors x {building.aps_per_floor} APs")
    print(f"Interference threshold: {DEFAULT_THRESHOLD_DBM:.0f} dBm "
          f"(CPRecycle: +{CPRECYCLE_TOLERANCE_GAIN_DB:.0f} dB)\n")
    print(f"{'receiver':>12} | {'mean neighbours':>15} {'80th percentile':>16} {'max':>5}")
    print("-" * 56)
    for label, counts in (("standard", standard_counts), ("CPRecycle", cpr_counts)):
        print(f"{label:>12} | {counts.mean():15.1f} {np.percentile(counts, 80):16.0f} "
              f"{counts.max():5d}")

    print("\nConflict-graph colouring (greedy) as a proxy for reusable channel slots:")
    for label, threshold in (
        ("standard", DEFAULT_THRESHOLD_DBM),
        ("CPRecycle", DEFAULT_THRESHOLD_DBM + CPRECYCLE_TOLERANCE_GAIN_DB),
    ):
        graph = interference_graph(rss, threshold)
        coloring = nx.coloring.greedy_color(graph, strategy="largest_first")
        n_colors = len(set(coloring.values())) if coloring else 0
        print(f"  {label:>10}: {graph.number_of_edges():4d} conflict edges, "
              f"{n_colors} colours needed")


if __name__ == "__main__":
    main()
