"""A campaign: two builtin figures plus a custom scenario, one managed run.

Builds a :class:`repro.api.CampaignSpec` over Fig. 4 (an analysis), Fig. 11
(a PSR sweep) and a hand-written mixed-interference scenario, with a
1-percentage-point PSR confidence-interval target, then runs it through the
adaptive campaign scheduler: every PSR grid cell keeps simulating packets in
geometric rounds until its Wilson confidence half-width meets the target (or
the fixed budget is spent), identical cells shared between experiments
simulate once, and the whole run checkpoints into a resumable manifest.

The spec round-trips through JSON — the file the CLI consumes::

    cprecycle-experiments campaign --spec my-campaign.json --resume

Run with ``python examples/campaign.py`` (a couple of minutes: the 1 pp
target needs a few hundred packets per unconverged cell).
"""

from __future__ import annotations

from pathlib import Path
from tempfile import mkdtemp

from repro.api import (
    CampaignExperiment,
    CampaignSpec,
    ExperimentSpec,
    InterfererSpec,
    PrecisionSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
)
from repro.campaigns import format_summary_markdown, run_campaign
from repro.experiments.config import ExperimentProfile

#: Example-sized execution profile: the fixed budget an adaptive cell may
#: never exceed is this profile's n_packets.
PROFILE = ExperimentProfile(name="example", n_packets=400, payload_length=60, n_sir_points=5)


def build_custom_experiment() -> ExperimentSpec:
    """A mixed ACI+CCI scenario no builtin figure covers."""
    return ExperimentSpec(
        name="aci-cci-mix",
        figure="Custom",
        title="PSR vs SIR: ACI + weak co-channel interferer",
        scenario=ScenarioSpec(
            mcs_name="qpsk-1/2",
            interferers=(
                InterfererSpec(kind="aci", guard_subcarriers=4),
                InterfererSpec(kind="cci", sir_db=18.0),
            ),
        ),
        receivers=(ReceiverSpec("standard"), ReceiverSpec("cprecycle")),
        sweep=SweepSpec(axes=(SweepAxis("sir_db", span=(-24.0, -9.0)),)),
        series_label="{receiver}",
    )


def build_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="example-campaign",
        title="Two paper figures + one custom scenario under a 1 pp CI target",
        experiments=(
            CampaignExperiment(builtin="fig4"),
            CampaignExperiment(builtin="fig11"),
            CampaignExperiment(spec=build_custom_experiment()),
        ),
        # The precision target: +/- 1 percentage point of PSR at 95%
        # confidence.  Cells start at 50 packets and double until converged
        # or the profile's fixed budget (400 packets) is spent.
        precision=PrecisionSpec(ci_halfwidth_pct=1.0, confidence=0.95, min_packets=50),
    )


def main() -> None:
    campaign = build_campaign()

    # The campaign is data: serialise, reload, get the identical campaign.
    text = campaign.to_json()
    assert CampaignSpec.from_json(text) == campaign
    print(f"Campaign round-trips through JSON ({len(text)} bytes); the CLI runs")
    print("the same file with:  cprecycle-experiments campaign --spec my-campaign.json\n")

    workspace = Path(mkdtemp(prefix="example-campaign-"))
    print(f"Running into {workspace} (manifest, point cache, artifacts, summary)...\n")
    run = run_campaign(campaign, workspace, profile=PROFILE)

    print(format_summary_markdown(run.summary))
    totals = run.summary["totals"]
    print(
        f"Adaptive sampling spent {totals['adaptive_packets']} packets where the "
        f"fixed-budget path would have spent {totals['fixed_packets']} "
        f"({100 * totals['packet_savings']:.1f}% saved) across "
        f"{totals['n_cells']} deduplicated cells in {totals['rounds']} rounds."
    )
    print("Interrupt a campaign at any point and re-run with resume=True (CLI:")
    print("--resume): it continues from the manifest and finishes bit-identically.")


if __name__ == "__main__":
    main()
