"""Custom scenarios through the declarative spec API — no figure module needed.

Composes a three-interferer scenario the hard-coded figure factories could
never express (ACI on both sides of the sender *plus* a weak co-channel
interferer), sweeps it over SIR through the ``run_experiment_spec`` facade,
registers a custom receiver plugin alongside the builtins, and round-trips
the whole experiment through JSON — the same file format the CLI consumes
(``cprecycle-experiments --spec my.json``).

Run with ``python examples/custom_scenario.py``.
"""

from __future__ import annotations

from repro.api import (
    ChannelSpec,
    ExperimentSpec,
    InterfererSpec,
    ReceiverSpec,
    ScenarioSpec,
    SweepAxis,
    SweepSpec,
    register_receiver,
    run_experiment_spec,
)
from repro.core import CPRecycleConfig, CPRecycleReceiver
from repro.experiments.config import ExperimentProfile
from repro.experiments.results import format_table

PROFILE = ExperimentProfile(name="example", n_packets=10, payload_length=60, n_sir_points=4)


# A receiver plugin: CPRecycle restricted to a quarter of the usual segment
# budget (a computation-limited device).  Registered builders are callable
# from any spec by name — no experiment-module edits.
@register_receiver("cprecycle-lite")
def _build_cprecycle_lite(allocation, n_segments, **options):
    return CPRecycleReceiver(CPRecycleConfig(max_segments=max(1, n_segments // 4), **options))


def build_experiment() -> ExperimentSpec:
    scenario = ScenarioSpec(
        mcs_name="qpsk-1/2",
        interferers=(
            # Two ACI interferers flanking the sender with asymmetric guard
            # bands; they share the swept total SIR.
            InterfererSpec(kind="aci", side="upper", guard_subcarriers=2),
            InterfererSpec(kind="aci", side="lower", guard_subcarriers=8),
            # ...plus a weak co-channel interferer pinned at its own SIR,
            # arriving over a 50 ns delay-spread multipath channel.
            InterfererSpec(
                kind="cci",
                sir_db=15.0,
                mcs_name="16qam-1/2",
                channel=ChannelSpec(kind="exponential", delay_spread_ns=50.0),
            ),
        ),
    )
    return ExperimentSpec(
        name="three-interferer-mix",
        figure="Custom",
        title="PSR vs SIR: two-sided ACI + weak multipath CCI",
        scenario=scenario,
        receivers=(
            ReceiverSpec("standard"),
            ReceiverSpec("cprecycle"),
            ReceiverSpec("cprecycle-lite", display="CPRecycle (1/4 segments)"),
        ),
        sweep=SweepSpec(axes=(SweepAxis("sir_db", span=(-24.0, -9.0)),)),
        series_label="{receiver}",
    )


def main() -> None:
    spec = build_experiment()

    print("Running the spec through the facade (pooled KDE, point cache and")
    print("--workers would all apply exactly as for the builtin figures)...\n")
    result = run_experiment_spec(spec, PROFILE)
    print(format_table(result))

    # The spec is data: serialise it, reload it, get the identical experiment.
    text = spec.to_json()
    from repro.api import ExperimentSpec as Spec

    assert Spec.from_json(text) == spec
    print(f"\nSpec round-trips through JSON ({len(text)} bytes); run it from the")
    print("CLI with:  cprecycle-experiments --spec my.json --workers 4 --out results")


if __name__ == "__main__":
    main()
