"""Adjacent-channel interference study (the paper's headline scenario).

Sweeps the signal-to-interference ratio for a sender flanked by an
adjacent-channel interferer on the same wideband grid and compares four
receivers: standard, naive multi-segment, genie Oracle and CPRecycle.
This is a scaled-down interactive version of Figure 8 / Figure 5.
"""

from __future__ import annotations

from repro.experiments import build_receivers, packet_success_rate
from repro.experiments.config import aci_scenario

SIR_VALUES_DB = (-12.0, -18.0, -24.0, -28.0)
N_PACKETS = 8


def main() -> None:
    print("Adjacent-channel interference, QPSK 1/2, 64-subcarrier sender block")
    print(f"{'SIR (dB)':>9} | {'standard':>9} {'naive':>9} {'oracle':>9} {'cprecycle':>9}")
    print("-" * 55)
    for sir_db in SIR_VALUES_DB:
        scenario = aci_scenario("qpsk-1/2", sir_db=sir_db, payload_length=60)
        receivers = build_receivers(
            scenario.allocation, ("standard", "naive", "oracle", "cprecycle")
        )
        stats = packet_success_rate(scenario, receivers, N_PACKETS, seed=42)
        row = " ".join(f"{stats[name].success_percent:8.0f}%" for name in
                       ("standard", "naive", "oracle", "cprecycle"))
        print(f"{sir_db:9.1f} | {row}")
    print("\nThe Oracle bounds what FFT-segment selection can achieve; CPRecycle")
    print("approaches it blindly using only the preamble-trained interference model.")


if __name__ == "__main__":
    main()
